/**
 * @file
 * Differential fuzz suite for the batched integrate fast paths.
 *
 * Every test drives two (or more) cores built from the same
 * configuration with a fast path enabled on one side and the scalar
 * reference on the other, feeds them identical spike streams, and
 * asserts bit-identical observable state: fired sets per tick,
 * membrane potentials per tick, and the architectural counters
 * (sops, spikes, evals, PRNG draw count).
 *
 * Coverage spans all three integrate paths (scalar, axon-word,
 * word-parallel), the stochastic outcome-batching toggle, every SIMD
 * dispatch level available on the host (swept in-process through
 * simd::setActiveLevel), instance-batched cores and a two-chip
 * board.  The fuzz configurations deliberately stress the fallback
 * conditions: mixed-sign weights near the saturation rails (small
 * potentialBits, large weights), stochastic synapses (PRNG draw
 * order), and all three update classes through both the dense and
 * sparse evaluation strategies.
 */

#include <gtest/gtest.h>

#include <map>

#include "board/board.hh"
#include "core/core.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/simd.hh"

namespace nscs {
namespace {

/** Multi-word geometry with a partial tail word. */
CoreGeometry
fuzzGeom()
{
    CoreGeometry g;
    g.numAxons = 96;
    g.numNeurons = 80;
    g.delaySlots = 16;
    return g;
}

/**
 * Random configuration biased toward the hard cases: a narrow
 * membrane register (8..12 bits) with weights up to the rail
 * magnitude, mixed signs, stochastic synapse/leak/threshold
 * features, and every update class.
 */
CoreConfig
fuzzConfig(uint64_t seed, double stoch_rate = 0.2)
{
    Xoshiro256 rng(seed);
    CoreGeometry g = fuzzGeom();
    CoreConfig cfg = CoreConfig::make(g);
    cfg.rngSeed = static_cast<uint16_t>(rng.below(65536));

    for (uint32_t a = 0; a < g.numAxons; ++a) {
        cfg.axonType[a] = static_cast<uint8_t>(rng.below(4));
        for (uint32_t n = 0; n < g.numNeurons; ++n)
            if (rng.chance(0.25))
                cfg.connect(a, n);
    }
    for (uint32_t n = 0; n < g.numNeurons; ++n) {
        NeuronParams &p = cfg.neurons[n];
        p.potentialBits = static_cast<uint8_t>(rng.range(8, 12));
        for (unsigned w = 0; w < kNumAxonTypes; ++w) {
            // Large mixed-sign weights drive partial sums into the
            // rails, exercising the fallback guard.
            p.synWeight[w] = static_cast<int16_t>(rng.range(-120, 120));
            p.synStochastic[w] = rng.chance(stoch_rate);
        }
        p.leak = static_cast<int16_t>(rng.range(-4, 4));
        p.leakReversal = rng.chance(0.15);
        p.leakStochastic = rng.chance(0.15);
        p.threshold = static_cast<int32_t>(rng.range(2, 60));
        p.negThreshold = static_cast<int32_t>(rng.below(100));
        p.negSaturate = rng.chance(0.7);
        p.thresholdMaskBits =
            rng.chance(0.2) ? static_cast<uint8_t>(rng.below(4)) : 0;
        p.resetMode = static_cast<ResetMode>(rng.below(3));
        p.resetPotential = static_cast<int32_t>(rng.range(-60, 1));
        p.initialPotential = static_cast<int32_t>(rng.range(-100, 100));
    }
    validateCoreConfig(cfg, "fuzzConfig");
    return cfg;
}

/** Random input spikes per tick, identical for every core under test. */
std::map<uint64_t, std::vector<std::pair<uint64_t, uint32_t>>>
fuzzInputs(uint64_t seed, const CoreGeometry &g, uint64_t ticks,
           double rate)
{
    Xoshiro256 rng(seed ^ 0xF00DBEEFull);
    std::map<uint64_t, std::vector<std::pair<uint64_t, uint32_t>>> in;
    for (uint64_t t = 0; t < ticks; ++t)
        for (uint32_t a = 0; a < g.numAxons; ++a)
            if (rng.chance(rate)) {
                // Mostly same-tick delivery, sometimes a short delay.
                uint64_t delivery =
                    t + (rng.chance(0.2) ? rng.below(4) : 0);
                if (delivery < ticks)
                    in[t].emplace_back(delivery, a);
            }
    return in;
}

/** Drive a sparse core per its contract (mirrors test_core.cc). */
void
sparseContractTick(Core &core, uint64_t t, std::vector<uint32_t> &fired)
{
    bool must = core.hasDenseNeurons() || !core.slotEmpty(t);
    auto se = core.nextSelfEvent();
    if (se && *se <= t)
        must = true;
    if (must)
        core.tickSparse(t, fired);
}

enum class Drive { Dense, Sparse };

/**
 * Run @p fast and @p scalar in lockstep over identical inputs and
 * assert identical fired sets, potentials and counters each tick.
 */
void
runDifferential(Core &fast, Core &scalar, Drive drive, uint64_t seed,
                uint64_t ticks, double rate)
{
    const CoreGeometry &g = fast.config().geom;
    auto inputs = fuzzInputs(seed, g, ticks, rate);

    std::vector<uint32_t> fired_f, fired_s;
    for (uint64_t t = 0; t < ticks; ++t) {
        auto it = inputs.find(t);
        if (it != inputs.end()) {
            for (auto [delivery, a] : it->second) {
                fast.deposit(delivery, a);
                scalar.deposit(delivery, a);
            }
        }
        fired_f.clear();
        fired_s.clear();
        if (drive == Drive::Dense) {
            fast.tickDense(t, fired_f);
            scalar.tickDense(t, fired_s);
        } else {
            sparseContractTick(fast, t, fired_f);
            sparseContractTick(scalar, t, fired_s);
        }
        ASSERT_EQ(fired_f, fired_s) << "tick " << t << " seed " << seed;
        ASSERT_EQ(fast.counters().rngDraws, scalar.counters().rngDraws)
            << "draw-order divergence at tick " << t << " seed " << seed;
        for (uint32_t n = 0; n < g.numNeurons; ++n)
            ASSERT_EQ(fast.settledPotential(n, t + 1),
                      scalar.settledPotential(n, t + 1))
                << "neuron " << n << " tick " << t << " seed " << seed;
    }
    EXPECT_EQ(fast.counters().sops, scalar.counters().sops);
    EXPECT_EQ(fast.counters().spikes, scalar.counters().spikes);
    EXPECT_EQ(fast.counters().evals, scalar.counters().evals);
    EXPECT_EQ(fast.counters().rngDraws, scalar.counters().rngDraws);
    // The scalar reference never batches.
    EXPECT_EQ(scalar.counters().sopsBatched, 0u);
    EXPECT_LE(fast.counters().sopsBatched, fast.counters().sops);
}

class IntegrateFastFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(IntegrateFastFuzz, DenseStrategyMatchesScalar)
{
    setQuiet(true);
    uint64_t seed = static_cast<uint64_t>(GetParam()) * 2654435761 + 7;
    CoreConfig cfg = fuzzConfig(seed);
    Core fast(cfg);
    Core scalar(cfg);
    fast.setWordParallelMinActive(0);
    scalar.setWordParallel(false);
    runDifferential(fast, scalar, Drive::Dense, seed, 200, 0.08);
    setQuiet(false);
}

TEST_P(IntegrateFastFuzz, SparseStrategyMatchesScalar)
{
    setQuiet(true);
    uint64_t seed = static_cast<uint64_t>(GetParam()) * 1299709 + 101;
    CoreConfig cfg = fuzzConfig(seed);
    Core fast(cfg);
    Core scalar(cfg);
    fast.setWordParallelMinActive(0);
    scalar.setWordParallel(false);
    runDifferential(fast, scalar, Drive::Sparse, seed, 200, 0.05);
    setQuiet(false);
}

TEST_P(IntegrateFastFuzz, DenseFastMatchesSparseFast)
{
    setQuiet(true);
    uint64_t seed = static_cast<uint64_t>(GetParam()) * 15485863 + 3;
    CoreConfig cfg = fuzzConfig(seed);
    Core dense(cfg);
    Core sparse(cfg);
    dense.setWordParallelMinActive(0);
    sparse.setWordParallelMinActive(0);
    auto inputs = fuzzInputs(seed, cfg.geom, 200, 0.06);
    std::vector<uint32_t> fired_d, fired_s;
    for (uint64_t t = 0; t < 200; ++t) {
        auto it = inputs.find(t);
        if (it != inputs.end()) {
            for (auto [delivery, a] : it->second) {
                dense.deposit(delivery, a);
                sparse.deposit(delivery, a);
            }
        }
        fired_d.clear();
        fired_s.clear();
        dense.tickDense(t, fired_d);
        sparseContractTick(sparse, t, fired_s);
        ASSERT_EQ(fired_d, fired_s) << "tick " << t << " seed " << seed;
    }
    EXPECT_EQ(dense.counters().sops, sparse.counters().sops);
    EXPECT_EQ(dense.counters().spikes, sparse.counters().spikes);
    EXPECT_EQ(dense.counters().rngDraws, sparse.counters().rngDraws);
    setQuiet(false);
}

TEST_P(IntegrateFastFuzz, AxonWordStrategyMatchesScalar)
{
    setQuiet(true);
    uint64_t seed = static_cast<uint64_t>(GetParam()) * 49979687 + 13;
    CoreConfig cfg = fuzzConfig(seed);
    Core fast(cfg);
    Core scalar(cfg);
    // Route every populated slot through the axon-word path: the
    // word-parallel gate is pushed out of reach and the axon-word
    // gate down to zero (96 axons <= the 128-row path limit).
    fast.setWordParallelMinActive(cfg.geom.numAxons + 1);
    fast.setAxonWordMinActive(0);
    scalar.setWordParallel(false);
    runDifferential(fast, scalar, Drive::Dense, seed, 200, 0.08);
    EXPECT_GT(fast.counters().sopsAxonWord, 0u);
    EXPECT_EQ(fast.counters().sopsAxonWord, fast.counters().sopsBatched);
    setQuiet(false);
}

TEST_P(IntegrateFastFuzz, AxonWordSparseStrategyMatchesScalar)
{
    setQuiet(true);
    uint64_t seed = static_cast<uint64_t>(GetParam()) * 32452843 + 29;
    CoreConfig cfg = fuzzConfig(seed);
    Core fast(cfg);
    Core scalar(cfg);
    fast.setWordParallelMinActive(cfg.geom.numAxons + 1);
    fast.setAxonWordMinActive(0);
    scalar.setWordParallel(false);
    runDifferential(fast, scalar, Drive::Sparse, seed, 200, 0.05);
    EXPECT_GT(fast.counters().sopsAxonWord, 0u);
    setQuiet(false);
}

TEST_P(IntegrateFastFuzz, ReplayFallbackMatchesScalar)
{
    // With outcome batching off, stochastic events divert through
    // the record-and-replay fallback; it must stay bit-identical.
    setQuiet(true);
    uint64_t seed = static_cast<uint64_t>(GetParam()) * 86028121 + 57;
    CoreConfig cfg = fuzzConfig(seed, 0.35);
    Core fast(cfg);
    Core scalar(cfg);
    fast.setWordParallelMinActive(0);
    fast.setStochasticIntegrateBatch(false);
    scalar.setWordParallel(false);
    runDifferential(fast, scalar, Drive::Dense, seed, 200, 0.08);
    setQuiet(false);
}

INSTANTIATE_TEST_SUITE_P(Sweep, IntegrateFastFuzz,
                         ::testing::Range(0, 25));

// --- targeted cases ----------------------------------------------------------

/** 4-axon, 2-neuron core with explicit types and weights. */
CoreConfig
tinyConfig()
{
    CoreGeometry g;
    g.numAxons = 4;
    g.numNeurons = 2;
    g.delaySlots = 16;
    return CoreConfig::make(g);
}

TEST(IntegrateFast, SaturationRailsForceScalarFallback)
{
    // Neuron 0: 8-bit register (rails -128/127), +100 then -100 from
    // v0 = 100.  Architectural order saturates at 127 before the
    // negative event, so the result is 27, not 100; batching would
    // be wrong, hence the rails guard must divert to the fallback.
    CoreConfig cfg = tinyConfig();
    cfg.axonType = {0, 1, 0, 1};
    for (uint32_t n = 0; n < 2; ++n) {
        NeuronParams &p = cfg.neurons[n];
        p.potentialBits = 8;
        p.synWeight = {100, -100, 0, 0};
        p.threshold = 127;
        p.initialPotential = 100;
    }
    cfg.connect(0, 0);
    cfg.connect(1, 0);

    for (bool fast : {true, false}) {
        Core core(cfg);
        core.setWordParallel(fast);
        core.setWordParallelMinActive(0);
        std::vector<uint32_t> fired;
        core.deposit(0, 0);
        core.deposit(0, 1);
        core.tickDense(0, fired);
        EXPECT_EQ(core.potential(0), 27) << "fast=" << fast;
        EXPECT_EQ(core.counters().sops, 2u);
        EXPECT_EQ(core.counters().sopsBatched, 0u)
            << "rails guard failed to divert, fast=" << fast;
    }
}

TEST(IntegrateFast, SameSignSaturationStillDivertsExactly)
{
    // Two +100 events into an 8-bit register from v0 = 0: the second
    // add saturates at 127.  The batched sum (200) would clamp to
    // the same value here, but the guard is conservative and the
    // fallback must reproduce 127 exactly.
    CoreConfig cfg = tinyConfig();
    cfg.axonType = {0, 0, 0, 0};
    NeuronParams &p = cfg.neurons[0];
    p.potentialBits = 8;
    p.synWeight = {100, 0, 0, 0};
    p.threshold = 127;
    cfg.connect(0, 0);
    cfg.connect(1, 0);

    for (bool fast : {true, false}) {
        Core core(cfg);
        core.setWordParallel(fast);
        core.setWordParallelMinActive(0);
        std::vector<uint32_t> fired;
        core.deposit(0, 0);
        core.deposit(0, 1);
        core.tickDense(0, fired);
        EXPECT_EQ(fired, (std::vector<uint32_t>{0})) << "fast=" << fast;
    }
}

TEST(IntegrateFast, DeterministicEventsAwayFromRailsBatch)
{
    // Small weights in a 20-bit register: everything batches.
    CoreConfig cfg = tinyConfig();
    cfg.axonType = {0, 1, 2, 3};
    for (uint32_t n = 0; n < 2; ++n) {
        NeuronParams &p = cfg.neurons[n];
        p.synWeight = {3, -2, 1, 5};
        p.threshold = 1000;
    }
    for (uint32_t a = 0; a < 4; ++a)
        for (uint32_t n = 0; n < 2; ++n)
            cfg.connect(a, n);

    Core core(cfg);
    core.setWordParallelMinActive(0);
    std::vector<uint32_t> fired;
    for (uint32_t a = 0; a < 4; ++a)
        core.deposit(0, a);
    core.tickDense(0, fired);
    EXPECT_EQ(core.potential(0), 3 - 2 + 1 + 5);
    EXPECT_EQ(core.potential(1), 3 - 2 + 1 + 5);
    EXPECT_EQ(core.counters().sops, 8u);
    EXPECT_EQ(core.counters().sopsBatched, 8u);
}

TEST(IntegrateFast, StochasticSynapsePreservesDrawOrder)
{
    // Two stochastic-synapse neurons fed by interleaved axons: the
    // LFSR draw order must stay axon-major across neurons.  The
    // pre-draw pass walks active axons (and their row bits) in
    // exactly that order, so batching the outcomes must reproduce
    // the scalar draw stream bit for bit.  A third core with outcome
    // batching disabled exercises the record-and-replay divert.
    CoreConfig cfg = tinyConfig();
    cfg.axonType = {0, 1, 0, 1};
    for (uint32_t n = 0; n < 2; ++n) {
        NeuronParams &p = cfg.neurons[n];
        p.synWeight = {90, -120, 0, 0};
        p.synStochastic = {true, true, false, false};
        p.threshold = 50;
        p.negThreshold = 60;
    }
    for (uint32_t a = 0; a < 4; ++a)
        for (uint32_t n = 0; n < 2; ++n)
            cfg.connect(a, n);

    Core fast(cfg);
    Core replay(cfg);
    Core scalar(cfg);
    fast.setWordParallelMinActive(0);
    replay.setWordParallelMinActive(0);
    replay.setStochasticIntegrateBatch(false);
    scalar.setWordParallel(false);
    std::vector<uint32_t> fired_f, fired_r, fired_s;
    for (uint64_t t = 0; t < 64; ++t) {
        for (uint32_t a = 0; a < 4; ++a) {
            fast.deposit(t, a);
            replay.deposit(t, a);
            scalar.deposit(t, a);
        }
        fired_f.clear();
        fired_r.clear();
        fired_s.clear();
        fast.tickDense(t, fired_f);
        replay.tickDense(t, fired_r);
        scalar.tickDense(t, fired_s);
        ASSERT_EQ(fired_f, fired_s) << "tick " << t;
        ASSERT_EQ(fired_r, fired_s) << "tick " << t;
        ASSERT_EQ(fast.potential(0), scalar.potential(0)) << "tick " << t;
        ASSERT_EQ(fast.potential(1), scalar.potential(1)) << "tick " << t;
        ASSERT_EQ(replay.potential(0), scalar.potential(0)) << "tick " << t;
        ASSERT_EQ(replay.potential(1), scalar.potential(1)) << "tick " << t;
    }
    EXPECT_EQ(fast.counters().rngDraws, scalar.counters().rngDraws);
    EXPECT_EQ(replay.counters().rngDraws, scalar.counters().rngDraws);
    EXPECT_GT(fast.counters().rngDraws, 0u);
    // With pre-drawn outcomes every stochastic event batches.
    EXPECT_EQ(fast.counters().sopsBatched, fast.counters().sops);
    EXPECT_EQ(fast.counters().sopsStochBatched, fast.counters().sops);
    // With batching off, all-stochastic events divert to the
    // scalar replay path: nothing may batch.
    EXPECT_EQ(replay.counters().sopsBatched, 0u);
    EXPECT_EQ(replay.counters().sopsStochBatched, 0u);
}

TEST(IntegrateFast, MixedBatchAndFallbackNeuronsCoexist)
{
    // Neuron 0 is deterministic, neuron 1 has a stochastic synapse.
    // With outcome batching (the default) both batch; with batching
    // disabled neuron 1 falls back to the scalar replay path while
    // neuron 0 still batches.
    CoreConfig cfg = tinyConfig();
    cfg.axonType = {0, 0, 1, 1};
    cfg.neurons[0].synWeight = {2, -1, 0, 0};
    cfg.neurons[0].threshold = 1000;
    cfg.neurons[1].synWeight = {80, -80, 0, 0};
    cfg.neurons[1].synStochastic = {true, false, false, false};
    cfg.neurons[1].threshold = 1000;
    cfg.neurons[1].negThreshold = 500;
    for (uint32_t a = 0; a < 4; ++a) {
        cfg.connect(a, 0);
        cfg.connect(a, 1);
    }

    Core fast(cfg);
    Core replay(cfg);
    Core scalar(cfg);
    fast.setWordParallelMinActive(0);
    replay.setWordParallelMinActive(0);
    replay.setStochasticIntegrateBatch(false);
    scalar.setWordParallel(false);
    std::vector<uint32_t> fired;
    for (uint64_t t = 0; t < 32; ++t) {
        for (uint32_t a = 0; a < 4; ++a) {
            fast.deposit(t, a);
            replay.deposit(t, a);
            scalar.deposit(t, a);
        }
        fired.clear();
        fast.tickDense(t, fired);
        fired.clear();
        replay.tickDense(t, fired);
        fired.clear();
        scalar.tickDense(t, fired);
        ASSERT_EQ(fast.potential(0), scalar.potential(0)) << "tick " << t;
        ASSERT_EQ(fast.potential(1), scalar.potential(1)) << "tick " << t;
        ASSERT_EQ(replay.potential(0), scalar.potential(0)) << "tick " << t;
        ASSERT_EQ(replay.potential(1), scalar.potential(1)) << "tick " << t;
    }
    EXPECT_EQ(fast.counters().rngDraws, scalar.counters().rngDraws);
    EXPECT_EQ(replay.counters().rngDraws, scalar.counters().rngDraws);
    // With pre-drawn outcomes all 8 events per tick batch.
    EXPECT_EQ(fast.counters().sopsBatched, 32u * 8u);
    EXPECT_EQ(fast.counters().sops, 32u * 8u);
    // Batching off: neuron 0's 4 events per tick batched, neuron 1's
    // 4 diverted to the replay path.
    EXPECT_EQ(replay.counters().sopsBatched, 32u * 4u);
    EXPECT_EQ(replay.counters().sops, 32u * 8u);
}

TEST(IntegrateFast, AdaptiveGateEngagesByActivity)
{
    // Default thresholds scale inversely with crossbar density: a
    // fully connected 64x64 core breaks even around 10 active rows
    // for the word-parallel path and 2 for the axon-word path, so
    // the three-way gate routes 1 row to scalar, 2-9 rows to
    // axon-word, and 10+ rows to word-parallel.
    CoreGeometry g;
    g.numAxons = 64;
    g.numNeurons = 64;
    g.delaySlots = 16;
    CoreConfig cfg = CoreConfig::make(g);
    for (uint32_t a = 0; a < g.numAxons; ++a)
        for (uint32_t n = 0; n < g.numNeurons; ++n)
            cfg.connect(a, n);
    for (uint32_t n = 0; n < g.numNeurons; ++n)
        cfg.neurons[n].threshold = 100000;

    Core core(cfg);
    EXPECT_EQ(core.wordParallelMinActive(), 10u);
    EXPECT_EQ(core.axonWordMinActive(), 2u);

    std::vector<uint32_t> fired;
    // One active axon sits below both thresholds: scalar path.
    core.deposit(0, 0);
    core.tickDense(0, fired);
    EXPECT_EQ(core.counters().sops, 1u * 64u);
    EXPECT_EQ(core.counters().sopsBatched, 0u);

    // Two active axons engage the axon-word path.
    core.deposit(1, 0);
    core.deposit(1, 1);
    fired.clear();
    core.tickDense(1, fired);
    EXPECT_EQ(core.counters().sops, 3u * 64u);
    EXPECT_EQ(core.counters().sopsBatched, 2u * 64u);
    EXPECT_EQ(core.counters().sopsAxonWord, 2u * 64u);

    // A full slot engages the word-parallel path.
    for (uint32_t a = 0; a < g.numAxons; ++a)
        core.deposit(2, a);
    fired.clear();
    core.tickDense(2, fired);
    EXPECT_EQ(core.counters().sops, 67u * 64u);
    EXPECT_EQ(core.counters().sopsBatched, 66u * 64u);
    // The word-parallel tick did not route through the axon-word path.
    EXPECT_EQ(core.counters().sopsAxonWord, 2u * 64u);
    // Occupancy counters saw three populated slots totalling 67 rows.
    EXPECT_EQ(core.counters().laneSlotsActive, 3u);
    EXPECT_EQ(core.counters().laneActiveAxons, 67u);
}

/**
 * Cores at or above the 2^14-synapse-grid probe gate run the
 * construction-time micro-calibration (timed probes of both real
 * integrate paths).  The picked threshold is timing-dependent, so
 * assert its contract rather than a value: it lands in
 * [1, numAxons + 1] and — whatever it is — results stay
 * bit-identical to the scalar reference.
 */
TEST(IntegrateFast, CalibratedCoreStaysBitIdentical)
{
    CoreGeometry g;
    g.numAxons = 128;
    g.numNeurons = 128;  // 16384 = probe gate: calibration runs
    g.delaySlots = 16;
    CoreConfig cfg = CoreConfig::make(g);
    Xoshiro256 rng(11);
    for (uint32_t a = 0; a < g.numAxons; ++a) {
        cfg.axonType[a] = static_cast<uint8_t>(rng.below(4));
        for (uint32_t n = 0; n < g.numNeurons; ++n)
            if (rng.chance(0.5))
                cfg.connect(a, n);
    }
    for (uint32_t n = 0; n < g.numNeurons; ++n) {
        cfg.neurons[n].synWeight = {2, -1, 1, -2};
        cfg.neurons[n].threshold = 500;
    }

    Core fast(cfg);
    Core scalar(cfg);
    scalar.setWordParallel(false);
    EXPECT_GE(fast.wordParallelMinActive(), 1u);
    EXPECT_LE(fast.wordParallelMinActive(), g.numAxons + 1);

    Xoshiro256 in_rng(3);
    std::vector<uint32_t> fired_f, fired_s;
    for (uint64_t t = 0; t < 40; ++t) {
        // Activity sweeps across the engagement threshold.
        uint32_t active = static_cast<uint32_t>(
            (t * 7) % g.numAxons);
        for (uint32_t i = 0; i < active; ++i) {
            uint32_t a = static_cast<uint32_t>(
                in_rng.below(g.numAxons));
            fast.deposit(t, a);
            scalar.deposit(t, a);
        }
        fired_f.clear();
        fired_s.clear();
        fast.tickDense(t, fired_f);
        scalar.tickDense(t, fired_s);
        ASSERT_EQ(fired_f, fired_s) << "tick " << t;
    }
    EXPECT_EQ(fast.counters().sops, scalar.counters().sops);
    EXPECT_EQ(fast.counters().spikes, scalar.counters().spikes);
}

/** A near-empty crossbar above the probe gate exercises the sweep's
 *  no-win budget fallback: the threshold must stay conservative. */
TEST(IntegrateFast, CalibrationSparseCrossbarStaysConservative)
{
    CoreGeometry g;
    g.numAxons = 128;
    g.numNeurons = 128;
    g.delaySlots = 16;
    CoreConfig cfg = CoreConfig::make(g);
    // Each axon touches one neuron: density 1/128, scalar integrate
    // is one event per row and word-parallel cannot plausibly win.
    for (uint32_t a = 0; a < g.numAxons; ++a)
        cfg.connect(a, a);
    for (uint32_t n = 0; n < g.numNeurons; ++n)
        cfg.neurons[n].threshold = 100000;

    Core core(cfg);
    // Scalar should win every probe here (one event per row), and
    // the budget fallback clamps max(model, 2 * probed) to
    // numAxons + 1.  Probes are wall-clock, so assert a conservative
    // floor rather than the exact fallback value: a spurious
    // deep-contention win can legitimately bracket below it, but a
    // systematically aggressive threshold (a calibration logic bug)
    // cannot pass.
    EXPECT_GE(core.wordParallelMinActive(), 16u);
    EXPECT_LE(core.wordParallelMinActive(), g.numAxons + 1);
}

TEST(IntegrateFast, AllUpdateClassesAppearInFuzzConfigs)
{
    // Guard the fuzz generator itself: across a few seeds it must
    // produce every update class, or the sparse differential tests
    // would silently lose coverage.
    bool seen[3] = {false, false, false};
    for (uint64_t seed = 0; seed < 8; ++seed) {
        CoreConfig cfg = fuzzConfig(seed * 7919 + 1);
        for (const NeuronParams &p : cfg.neurons)
            seen[static_cast<int>(classifyNeuron(p))] = true;
    }
    EXPECT_TRUE(seen[static_cast<int>(UpdateClass::Pure)]);
    EXPECT_TRUE(seen[static_cast<int>(UpdateClass::LazyLeak)]);
    EXPECT_TRUE(seen[static_cast<int>(UpdateClass::Dense)]);
}

TEST(IntegrateFast, ToggleMidRunStaysConsistent)
{
    // Flipping the path at a tick boundary must not corrupt state:
    // run half the ticks fast, half scalar, against an all-scalar
    // reference.
    uint64_t seed = 42;
    CoreConfig cfg = fuzzConfig(seed, 0.0);
    Core mixed(cfg);
    Core scalar(cfg);
    scalar.setWordParallel(false);
    auto inputs = fuzzInputs(seed, cfg.geom, 100, 0.1);
    std::vector<uint32_t> fired_m, fired_s;
    for (uint64_t t = 0; t < 100; ++t) {
        mixed.setWordParallel(t % 2 == 0);
        mixed.setWordParallelMinActive(t % 3 == 0 ? 0 : 5);
        auto it = inputs.find(t);
        if (it != inputs.end()) {
            for (auto [delivery, a] : it->second) {
                mixed.deposit(delivery, a);
                scalar.deposit(delivery, a);
            }
        }
        fired_m.clear();
        fired_s.clear();
        mixed.tickDense(t, fired_m);
        scalar.tickDense(t, fired_s);
        ASSERT_EQ(fired_m, fired_s) << "tick " << t;
    }
    EXPECT_EQ(mixed.counters().sops, scalar.counters().sops);
}

// --- SIMD dispatch-level differentials ---------------------------------------

/** Restore the process-wide SIMD level on scope exit, so a failing
 *  assertion cannot leak a forced level into later tests. */
struct LevelGuard
{
    simd::Level saved = simd::activeLevel();
    ~LevelGuard() { simd::setActiveLevel(saved); }
};

/**
 * Every available dispatch level, crossed with every integrate path,
 * must reproduce one canonical spike stream: the scalar-dispatch,
 * scalar-path run.  This is the in-process equivalent of running the
 * suite under NSCS_SIMD=<level> for each level.
 */
TEST(IntegrateFast, DispatchLevelSweepBitIdentical)
{
    setQuiet(true);
    LevelGuard guard;
    const uint64_t seed = 424242;
    const uint64_t ticks = 150;
    CoreConfig cfg = fuzzConfig(seed, 0.3);
    auto inputs = fuzzInputs(seed, cfg.geom, ticks, 0.10);

    enum PathMode { kScalarPath, kAxonWordPath, kWordParallelPath };
    std::vector<std::vector<std::vector<uint32_t>>> streams;
    auto run = [&](simd::Level lvl, PathMode mode, uint64_t &draws,
                   uint64_t &sops) {
        ASSERT_TRUE(simd::setActiveLevel(lvl));
        Core core(cfg);
        switch (mode) {
        case kScalarPath:
            core.setWordParallel(false);
            break;
        case kAxonWordPath:
            core.setWordParallelMinActive(cfg.geom.numAxons + 1);
            core.setAxonWordMinActive(0);
            break;
        case kWordParallelPath:
            core.setWordParallelMinActive(0);
            break;
        }
        std::vector<uint32_t> fired;
        std::vector<std::vector<uint32_t>> stream;
        for (uint64_t t = 0; t < ticks; ++t) {
            auto it = inputs.find(t);
            if (it != inputs.end())
                for (auto [delivery, a] : it->second)
                    core.deposit(delivery, a);
            fired.clear();
            core.tickDense(t, fired);
            stream.push_back(fired);
        }
        draws = core.counters().rngDraws;
        sops = core.counters().sops;
        streams.push_back(std::move(stream));
    };

    uint64_t ref_draws = 0, ref_sops = 0;
    run(simd::Level::Scalar, kScalarPath, ref_draws, ref_sops);
    const std::vector<std::vector<uint32_t>> ref = streams.front();
    ASSERT_GT(ref_draws, 0u);

    for (simd::Level lvl : simd::availableLevels()) {
        for (PathMode mode :
             {kScalarPath, kAxonWordPath, kWordParallelPath}) {
            uint64_t draws = 0, sops = 0;
            run(lvl, mode, draws, sops);
            EXPECT_EQ(streams.back(), ref)
                << simd::levelName(lvl) << " path " << mode;
            EXPECT_EQ(draws, ref_draws)
                << simd::levelName(lvl) << " path " << mode;
            EXPECT_EQ(sops, ref_sops)
                << simd::levelName(lvl) << " path " << mode;
        }
    }
    setQuiet(false);
}

/**
 * Instance-batched lanes (PR 8) must keep per-lane identity at every
 * dispatch level: an 8-lane core's InstanceFire stream, LFSR draw
 * count and per-lane potentials match a scalar-dispatch reference.
 */
TEST(IntegrateFast, InstanceBatchedLevelsBitIdentical)
{
    setQuiet(true);
    LevelGuard guard;
    const uint64_t seed = 77;
    const uint64_t ticks = 100;
    const uint32_t B = 8;
    CoreConfig cfg = fuzzConfig(seed, 0.25);
    Xoshiro256 in_rng(seed ^ 0xB00ull);
    // Per-instance input schedule: (tick, instance, axon).
    std::vector<std::tuple<uint64_t, uint32_t, uint32_t>> inputs;
    for (uint64_t t = 0; t < ticks; ++t)
        for (uint32_t i = 0; i < B; ++i)
            for (uint32_t a = 0; a < cfg.geom.numAxons; ++a)
                if (in_rng.chance(0.04))
                    inputs.emplace_back(t, i, a);

    auto run = [&](simd::Level lvl, std::vector<InstanceFire> &stream,
                   uint64_t &draws, std::vector<int32_t> &pots) {
        ASSERT_TRUE(simd::setActiveLevel(lvl));
        Core core(cfg, B);
        core.setWordParallelMinActive(0);
        size_t next = 0;
        std::vector<InstanceFire> fired;
        for (uint64_t t = 0; t < ticks; ++t) {
            while (next < inputs.size() &&
                   std::get<0>(inputs[next]) == t) {
                core.deposit(t, std::get<2>(inputs[next]),
                             std::get<1>(inputs[next]));
                ++next;
            }
            fired.clear();
            core.tickDense(t, fired);
            stream.insert(stream.end(), fired.begin(), fired.end());
        }
        draws = core.counters().rngDraws;
        for (uint32_t i = 0; i < B; ++i)
            for (uint32_t n = 0; n < cfg.geom.numNeurons; ++n)
                pots.push_back(core.potential(n, i));
    };

    std::vector<InstanceFire> ref_stream;
    uint64_t ref_draws = 0;
    std::vector<int32_t> ref_pots;
    run(simd::Level::Scalar, ref_stream, ref_draws, ref_pots);
    EXPECT_FALSE(ref_stream.empty());

    for (simd::Level lvl : simd::availableLevels()) {
        if (lvl == simd::Level::Scalar)
            continue;
        std::vector<InstanceFire> stream;
        uint64_t draws = 0;
        std::vector<int32_t> pots;
        run(lvl, stream, draws, pots);
        EXPECT_EQ(stream, ref_stream) << simd::levelName(lvl);
        EXPECT_EQ(draws, ref_draws) << simd::levelName(lvl);
        EXPECT_EQ(pots, ref_pots) << simd::levelName(lvl);
    }
    setQuiet(false);
}

/**
 * Whole-board configuration swept across dispatch levels: a two-chip
 * pacemaker/relay board with stochastic relay synapses must emit a
 * bit-identical OutputSpike stream at every level.
 */
TEST(IntegrateFast, BoardOutputsBitIdenticalAcrossLevels)
{
    setQuiet(true);
    LevelGuard guard;
    const uint64_t ticks = 200;

    // Core 0: 16 staggered pacemakers (period 3) targeting core 1's
    // axons with delay 1; core 1: relay neurons with a stochastic
    // excitatory synapse (rho < 200 fires) routed to output lines.
    CoreGeometry g;
    g.numAxons = 16;
    g.numNeurons = 16;
    g.delaySlots = 16;
    CoreConfig src = CoreConfig::make(g);
    CoreConfig dst = CoreConfig::make(g);
    dst.rngSeed = 0x5EED;
    for (uint32_t n = 0; n < g.numNeurons; ++n) {
        NeuronParams p;
        p.leak = 1;
        p.threshold = 3;
        p.resetMode = ResetMode::Store;
        p.initialPotential = static_cast<int32_t>(n) % 3;
        src.neurons[n] = p;
        NeuronDest &d = src.dests[n];
        d.kind = NeuronDest::Kind::Core;
        d.dx = 1;
        d.dy = 0;
        d.axon = static_cast<uint16_t>(n);
        d.delay = 1;

        dst.connect(n, n);
        NeuronParams q;
        q.synWeight = {200, 0, 0, 0};
        q.synStochastic = {true, false, false, false};
        q.threshold = 1;
        dst.neurons[n] = q;
        NeuronDest &o = dst.dests[n];
        o.kind = NeuronDest::Kind::Output;
        o.line = n;
    }

    BoardParams bp;
    bp.width = 2;
    bp.height = 1;
    bp.chip.width = 1;
    bp.chip.height = 1;
    bp.chip.coreGeom = g;

    auto run = [&](simd::Level lvl) {
        EXPECT_TRUE(simd::setActiveLevel(lvl));
        Board board(bp, {src, dst});
        board.run(ticks);
        return board.outputs();
    };

    const std::vector<OutputSpike> ref = run(simd::Level::Scalar);
    EXPECT_FALSE(ref.empty());
    for (simd::Level lvl : simd::availableLevels()) {
        if (lvl == simd::Level::Scalar)
            continue;
        EXPECT_EQ(run(lvl), ref) << simd::levelName(lvl);
    }
    setQuiet(false);
}

} // anonymous namespace
} // namespace nscs
