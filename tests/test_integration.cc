/**
 * @file
 * Cross-module integration tests: model-file round trips, the full
 * train->compile->run pipeline, simulator facade, trace I/O, and
 * corelet composition on the chip.
 */

#include <gtest/gtest.h>

#include "apps/classifier.hh"
#include "apps/dataset.hh"
#include "apps/trainer.hh"
#include "baseline/reference_sim.hh"
#include "prog/compiler.hh"
#include "prog/corelet.hh"
#include "runtime/simulator.hh"
#include "runtime/trace.hh"
#include "util/logging.hh"

namespace nscs {
namespace {

CompileOptions
smallOptions()
{
    CompileOptions opt;
    opt.geom.numAxons = 32;
    opt.geom.numNeurons = 32;
    opt.geom.delaySlots = 16;
    return opt;
}

/** An oscillating two-stage network with both inputs and outputs. */
Network
pipelineNetwork()
{
    Network net;
    NeuronParams p;
    p.synWeight = {2, -1, 1, 1};
    p.threshold = 2;
    PopId a = net.addPopulation("stage1", 10, p);
    PopId b = net.addPopulation("stage2", 10, p);
    net.connectOneToOne(a, b, 0, 2);
    uint32_t in = net.addInput("in");
    for (uint32_t i = 0; i < 10; ++i)
        net.bindInput(in, {a, i}, 0);
    for (uint32_t i = 0; i < 10; ++i)
        net.markOutput({b, i});
    return net;
}

TEST(ModelFile, SaveLoadPreservesBehaviour)
{
    Network net = pipelineNetwork();
    CompiledModel model = compile(net, smallOptions());

    std::string path = ::testing::TempDir() + "/nscs_model.json";
    ASSERT_TRUE(saveCompiledModel(path, model));
    CompiledModel loaded;
    ASSERT_TRUE(loadCompiledModel(path, loaded));
    EXPECT_EQ(loaded.gridWidth, model.gridWidth);
    EXPECT_EQ(loaded.gridHeight, model.gridHeight);
    EXPECT_EQ(loaded.numOutputs, model.numOutputs);
    ASSERT_EQ(loaded.cores.size(), model.cores.size());
    for (size_t i = 0; i < model.cores.size(); ++i) {
        EXPECT_EQ(loaded.cores[i].neurons, model.cores[i].neurons);
        EXPECT_EQ(loaded.cores[i].xbarRows, model.cores[i].xbarRows);
        EXPECT_EQ(loaded.cores[i].dests, model.cores[i].dests);
        EXPECT_EQ(loaded.cores[i].axonType, model.cores[i].axonType);
    }

    // Behavioural identity on the reference simulator.
    ReferenceSim orig(model);
    ReferenceSim back(loaded);
    const auto &t0 = model.inputTargets("in");
    const auto &t1 = loaded.inputTargets("in");
    ASSERT_EQ(t0.size(), t1.size());
    for (uint64_t t = 0; t < 60; ++t) {
        if (t % 3 == 0) {
            for (const InputSpike &s : t0)
                orig.injectInput(s.core, s.axon, t);
            for (const InputSpike &s : t1)
                back.injectInput(s.core, s.axon, t);
        }
        orig.tick();
        back.tick();
    }
    ASSERT_FALSE(orig.outputs().empty());
    EXPECT_EQ(orig.outputs(), back.outputs());
}

TEST(ModelFile, BoardTargetRoundTripAndDeploy)
{
    Network net = pipelineNetwork();
    CompileOptions opt = smallOptions();
    opt.boardWidth = 2;
    opt.boardHeight = 1;
    CompiledModel model = compile(net, opt);
    EXPECT_EQ(model.boardWidth, 2u);
    EXPECT_EQ(model.gridWidth % 2, 0u);

    std::string path = ::testing::TempDir() + "/nscs_board.json";
    ASSERT_TRUE(saveCompiledModel(path, model));
    CompiledModel loaded;
    ASSERT_TRUE(loadCompiledModel(path, loaded));
    EXPECT_EQ(loaded.boardWidth, 2u);
    EXPECT_EQ(loaded.boardHeight, 1u);

    // Deploy the loaded model on its board target and on one chip:
    // identical streams (the pipeline lives on one chip tile, so raw
    // vector equality holds — no cross-chip interleaving).
    ChipParams cp;
    cp.width = loaded.gridWidth;
    cp.height = loaded.gridHeight;
    cp.coreGeom = loaded.geom;
    Simulator chip_sim(cp, loaded.cores);
    chip_sim.addSource(std::make_unique<RegularSource>(
        loaded.inputTargets("in"), 2));
    chip_sim.run(60);

    BoardParams bp;
    bp.width = loaded.boardWidth;
    bp.height = loaded.boardHeight;
    bp.chip.width = loaded.gridWidth / loaded.boardWidth;
    bp.chip.height = loaded.gridHeight / loaded.boardHeight;
    bp.chip.coreGeom = loaded.geom;
    Simulator board_sim(bp, loaded.cores);
    EXPECT_TRUE(board_sim.isBoard());
    board_sim.addSource(std::make_unique<RegularSource>(
        loaded.inputTargets("in"), 2));
    board_sim.run(60);

    ASSERT_FALSE(chip_sim.recorder().spikes().empty());
    EXPECT_EQ(chip_sim.recorder().spikes(),
              board_sim.recorder().spikes());

    board_sim.reset();
    EXPECT_EQ(board_sim.recorder().size(), 0u);
    EXPECT_EQ(board_sim.board().now(), 0u);
}

TEST(SimulatorFacade, SourcesAndRecorder)
{
    Network net = pipelineNetwork();
    CompiledModel model = compile(net, smallOptions());

    ChipParams cp;
    cp.width = model.gridWidth;
    cp.height = model.gridHeight;
    cp.coreGeom = model.geom;
    Simulator sim(cp, model.cores);

    // Drive every second tick via a RegularSource on the compiled
    // injection targets.
    sim.addSource(std::make_unique<RegularSource>(
        model.inputTargets("in"), 2));
    RunPerf perf = sim.run(100);
    EXPECT_EQ(perf.ticks, 100u);
    EXPECT_GT(perf.spikesOut, 0u);
    EXPECT_GT(perf.ticksPerSecond(), 0.0);

    // Stage-2 threshold 2, inputs every 2 ticks: line 0 fires every
    // 4 ticks starting at integrate-tick 2+... just check counts and
    // ordering are consistent.
    const SpikeRecorder &rec = sim.recorder();
    EXPECT_EQ(rec.size(), perf.spikesOut);
    uint64_t line0 = rec.count(0);
    EXPECT_GT(line0, 10u);
    auto ticks = rec.ticksOf(0);
    ASSERT_FALSE(ticks.empty());
    EXPECT_TRUE(std::is_sorted(ticks.begin(), ticks.end()));
    EXPECT_EQ(rec.countInWindow(0, 0, 1000), line0);
    EXPECT_TRUE(rec.firstSpike(0).has_value());

    sim.reset();
    EXPECT_EQ(sim.recorder().size(), 0u);
    EXPECT_EQ(sim.chip().now(), 0u);
}

TEST(SimulatorFacade, PoissonAndScheduleSources)
{
    Network net = pipelineNetwork();
    CompiledModel model = compile(net, smallOptions());
    ChipParams cp;
    cp.width = model.gridWidth;
    cp.height = model.gridHeight;
    cp.coreGeom = model.geom;
    Simulator sim(cp, model.cores);
    sim.addSource(std::make_unique<PoissonSource>(
        model.inputTargets("in"), 0.5, 77));
    auto sched = std::make_unique<ScheduleSource>();
    sched->add(3, model.inputTargets("in")[0]);
    EXPECT_EQ(sched->size(), 1u);
    sim.addSource(std::move(sched));
    sim.run(200);
    EXPECT_GT(sim.recorder().size(), 0u);
}

TEST(TraceIO, RoundTripAndRaster)
{
    std::vector<OutputSpike> spikes = {
        {0, 1}, {3, 0}, {3, 1}, {7, 2}};
    std::string text = formatSpikeTrace(spikes);
    std::vector<OutputSpike> back;
    ASSERT_TRUE(parseSpikeTrace(text, back));
    EXPECT_EQ(back, spikes);

    std::string path = ::testing::TempDir() + "/nscs_trace.txt";
    ASSERT_TRUE(writeSpikeTrace(path, spikes));
    std::vector<OutputSpike> from_file;
    ASSERT_TRUE(readSpikeTrace(path, from_file));
    EXPECT_EQ(from_file, spikes);

    std::string raster = renderRaster(spikes, 0, 3, 0, 8);
    // line 1 spikes at ticks 0 and 3.
    EXPECT_NE(raster.find("line 1  |..|...."), std::string::npos);
    EXPECT_NE(raster.find("line 2  .......|"), std::string::npos);

    std::vector<OutputSpike> bad;
    EXPECT_FALSE(parseSpikeTrace("3 x", bad));
}

TEST(TraceIO, SpikeRowRendering)
{
    EXPECT_EQ(renderSpikeRow({1, 4}, 0, 6), ".|..|.");
    EXPECT_EQ(renderSpikeRow({}, 0, 3), "...");
}

TEST(Pipeline, TrainCompileRunEndToEnd)
{
    // The full tool-flow: dataset -> train -> quantise -> compile ->
    // chip inference, validated against the float model's accuracy.
    Dataset ds = makeGaussianDigits(3, 6, 24, 0.04, 71);
    Dataset train, test;
    ds.split(4, train, test);
    LinearModel model = trainPerceptron(train, 10, 9);
    QuantizedModel qm = quantize(model);

    ClassifierOptions opt;
    opt.window = 64;
    SpikingClassifier clf(qm, opt);
    EvalResult res = clf.evaluate(test);

    double host = quantizedAccuracy(qm, test);
    EXPECT_GE(res.accuracy, host - 0.2)
        << "chip inference collapsed relative to host quantised";
    EXPECT_GE(res.accuracy, 0.6);
}

TEST(Pipeline, CoreletCompositionSequenceDetector)
{
    // merger(OR) -> delayLine -> majority(2): fires only when a
    // trigger arrives exactly 3 ticks after a priming event.
    Network net;
    auto prime = corelets::merger(net, "prime");
    auto dl = corelets::delayLine(net, "dl", 3);
    auto trig = corelets::merger(net, "trigger");
    auto coinc = corelets::majority(net, "coinc", 2);

    net.connect(prime.out[0], dl.in[0], 0, 1);
    net.connect(dl.out[0], coinc.in[0], 0, 1);
    net.connect(trig.out[0], coinc.in[0], 0, 1);
    uint32_t in_p = net.addInput("prime");
    uint32_t in_t = net.addInput("trigger");
    net.bindInput(in_p, prime.in[0], 0);
    net.bindInput(in_t, trig.in[0], 0);
    net.markOutput(coinc.out[0]);

    CompiledModel model = compile(net, smallOptions());
    ChipParams cp;
    cp.width = model.gridWidth;
    cp.height = model.gridHeight;
    cp.coreGeom = model.geom;

    // Path timing: prime fires t, head integrates t+1 and fires,
    // tail fires t+3, coincidence input at t+4.  The trigger path:
    // trigger fires t', coincidence input at t'+1.  Coincidence
    // needs both in the same tick: t' = t + 3.
    struct Case { uint64_t prime, trigger; bool expect; };
    const Case cases[] = {
        {0, 3, true},
        {20, 22, false},
        {40, 44, false},
        {60, 63, true},
    };
    for (const Case &c : cases) {
        Chip chip(cp, model.cores);
        for (uint64_t t = 0; t < 80; ++t) {
            if (t == c.prime)
                for (const InputSpike &s :
                         model.inputTargets("prime"))
                    chip.injectInput(s.core, s.axon, t);
            if (t == c.trigger)
                for (const InputSpike &s :
                         model.inputTargets("trigger"))
                    chip.injectInput(s.core, s.axon, t);
            chip.tick();
        }
        EXPECT_EQ(!chip.outputs().empty(), c.expect)
            << "prime@" << c.prime << " trigger@" << c.trigger;
    }
}

TEST(Pipeline, StatsDumpIsComprehensive)
{
    Network net = pipelineNetwork();
    CompiledModel model = compile(net, smallOptions());
    ChipParams cp;
    cp.width = model.gridWidth;
    cp.height = model.gridHeight;
    cp.coreGeom = model.geom;
    Simulator sim(cp, model.cores);
    sim.addSource(std::make_unique<RegularSource>(
        model.inputTargets("in"), 2));
    sim.run(50);

    StatGroup g;
    sim.chip().dumpStats("chip", g);
    EXPECT_GT(g.get("chip.sops"), 0.0);
    EXPECT_GT(g.get("chip.spikes"), 0.0);
    EXPECT_GT(g.get("chip.energy.totalJ"), 0.0);
    EXPECT_GT(g.get("chip.energy.pJPerSop"), 0.0);
    EXPECT_FALSE(g.format().empty());
}

} // anonymous namespace
} // namespace nscs
