/**
 * @file
 * Self-tests for the nscs_lint rules engine (tools/lint): for every
 * rule, fixture snippets that must flag and snippets that must stay
 * clean, plus the lexer (comments/strings/raw strings), the
 * allow-comment waiver machinery, and the file-scope-state
 * classifier's declaration-vs-definition discrimination.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint/lint.hh"

using nscs::lint::Finding;
using nscs::lint::lintSource;
using nscs::lint::lintableFile;

namespace {

std::vector<std::string>
rulesHit(const std::string &src)
{
    std::vector<std::string> rules;
    for (const Finding &f : lintSource("fixture.cc", src))
        rules.push_back(f.rule);
    return rules;
}

bool
hits(const std::string &src, const std::string &rule)
{
    auto rules = rulesHit(src);
    return std::find(rules.begin(), rules.end(), rule) != rules.end();
}

} // namespace

TEST(LintWallClock, FlagsTimeSources)
{
    EXPECT_TRUE(hits("uint64_t t = time(nullptr);", "wall-clock"));
    EXPECT_TRUE(hits("auto c = clock();", "wall-clock"));
    EXPECT_TRUE(hits("auto t = std::time(nullptr);", "wall-clock"));
    EXPECT_TRUE(hits("gettimeofday(&tv, nullptr);", "wall-clock"));
    EXPECT_TRUE(hits("auto n = std::chrono::system_clock::now();",
                     "wall-clock"));
    EXPECT_TRUE(hits("auto n = std::chrono::steady_clock::now();",
                     "wall-clock"));
    EXPECT_TRUE(
        hits("auto n = std::chrono::high_resolution_clock::now();",
             "wall-clock"));
}

TEST(LintWallClock, IgnoresLookalikes)
{
    // Identifier-boundary discipline: members, other scopes, and
    // longer identifiers must not trip the call rules.
    EXPECT_FALSE(hits("uint64_t deliveryTime(uint32_t n);",
                      "wall-clock"));
    EXPECT_FALSE(hits("sim.time();", "wall-clock"));
    EXPECT_FALSE(hits("obj->clock();", "wall-clock"));
    EXPECT_FALSE(hits("Scheduler::time(slot);", "wall-clock"));
    EXPECT_FALSE(hits("uint64_t time = 4;", "wall-clock"));
    EXPECT_FALSE(hits("runtime(args);", "wall-clock"));
}

TEST(LintRawRandom, FlagsRawGenerators)
{
    EXPECT_TRUE(hits("int r = rand();", "raw-random"));
    EXPECT_TRUE(hits("srand(42);", "raw-random"));
    EXPECT_TRUE(hits("std::random_device rd;", "raw-random"));
    EXPECT_TRUE(hits("std::mt19937 gen(rd());", "raw-random"));
    EXPECT_TRUE(hits("std::mt19937_64 gen;", "raw-random"));
    EXPECT_TRUE(hits("auto e = std::default_random_engine{};",
                     "raw-random"));
    EXPECT_TRUE(hits("double d = drand48();", "raw-random"));
}

TEST(LintRawRandom, AllowsUtilRng)
{
    EXPECT_FALSE(hits("Lfsr16 rng(seed);\n"
                      "uint16_t v = rng.next();",
                      "raw-random"));
    EXPECT_FALSE(hits("Xoshiro256 host(7);\n"
                      "double u = host.uniform();",
                      "raw-random"));
    // "random" as part of a longer identifier or member.
    EXPECT_FALSE(hits("bool pseudorandom(int x);", "raw-random"));
    EXPECT_FALSE(hits("cfg.random(rows);", "raw-random"));
}

TEST(LintRawIo, FlagsStdoutWriters)
{
    EXPECT_TRUE(hits("printf(\"%d\", x);", "raw-io"));
    EXPECT_TRUE(hits("std::printf(\"hi\");", "raw-io"));
    EXPECT_TRUE(hits("puts(\"hi\");", "raw-io"));
    EXPECT_TRUE(hits("std::cout << x;", "raw-io"));
    EXPECT_TRUE(hits("std::cerr << x;", "raw-io"));
    EXPECT_TRUE(hits("fprintf(stdout, \"%d\", x);", "raw-io"));
}

TEST(LintRawIo, AllowsLoggingImplementation)
{
    // What util/logging.cc itself does must stay legal: formatted
    // output to stderr and the snprintf family.
    EXPECT_FALSE(hits("std::fprintf(stderr, \"%s\\n\", msg);",
                      "raw-io"));
    EXPECT_FALSE(hits("int n = std::vsnprintf(nullptr, 0, fmt, ap);",
                      "raw-io"));
    EXPECT_FALSE(hits("std::snprintf(buf, sizeof(buf), \"%d\", x);",
                      "raw-io"));
    EXPECT_FALSE(hits("sprintf_like(buf);", "raw-io"));
}

TEST(LintPriorityQueue, FlagsUsage)
{
    EXPECT_TRUE(hits(
        "std::priority_queue<std::pair<uint64_t, uint32_t>> q;",
        "priority-queue"));
}

TEST(LintPriorityQueue, AllowsExplicitHeap)
{
    EXPECT_FALSE(hits(
        "std::vector<std::pair<uint64_t, uint32_t>> heap;\n"
        "std::push_heap(heap.begin(), heap.end(), std::greater<>{});\n"
        "std::pop_heap(heap.begin(), heap.end(), std::greater<>{});",
        "priority-queue"));
}

TEST(LintFileScope, FlagsMutableGlobals)
{
    EXPECT_TRUE(hits("bool quietFlag = false;", "file-scope-state"));
    EXPECT_TRUE(hits("namespace nscs {\n"
                     "namespace {\n"
                     "int counter = 0;\n"
                     "}\n"
                     "}\n",
                     "file-scope-state"));
    EXPECT_TRUE(hits("static uint64_t calls;", "file-scope-state"));
    EXPECT_TRUE(hits("std::vector<int> registry = {1, 2};",
                     "file-scope-state"));
}

TEST(LintFileScope, AllowsGuardedAndLocalState)
{
    EXPECT_FALSE(hits("const int kLimit = 4;", "file-scope-state"));
    EXPECT_FALSE(hits("constexpr uint64_t kNever = ~0ull;",
                      "file-scope-state"));
    EXPECT_FALSE(hits("std::atomic<bool> quietFlag{false};",
                      "file-scope-state"));
    EXPECT_FALSE(hits("thread_local int scratch = 0;",
                      "file-scope-state"));
    EXPECT_FALSE(hits("static const char *kNames[4] = {\"a\"};",
                      "file-scope-state"));
    // Function-local state is out of scope for this rule.
    EXPECT_FALSE(hits("void f()\n{\n    int local = 3;\n}\n",
                      "file-scope-state"));
    // Members live inside an opaque class brace.
    EXPECT_FALSE(hits("class C\n{\n    int member_ = 0;\n};\n",
                      "file-scope-state"));
}

TEST(LintFileScope, SkipsDeclarations)
{
    EXPECT_FALSE(hits("void warn(const char *fmt, ...);",
                      "file-scope-state"));
    EXPECT_FALSE(hits("std::string vstrprintf(const char *fmt, "
                      "std::va_list ap);",
                      "file-scope-state"));
    EXPECT_FALSE(hits("using Pair = std::pair<int, int>;",
                      "file-scope-state"));
    EXPECT_FALSE(hits("typedef int Tick;", "file-scope-state"));
    EXPECT_FALSE(hits("class Core;", "file-scope-state"));
    EXPECT_FALSE(hits("struct Packet\n{\n    int x = 0;\n};\n",
                      "file-scope-state"));
    EXPECT_FALSE(hits("enum class Kind { A, B };",
                      "file-scope-state"));
    EXPECT_FALSE(hits("template <typename T> T max(T a, T b);",
                      "file-scope-state"));
    EXPECT_FALSE(hits("extern int externalKnob;",
                      "file-scope-state"));
}

TEST(LintFileScope, GlobalAfterFunctionBodyStillFlags)
{
    // A function definition has no trailing ';' — its header must
    // not glue onto the next statement and mask it.
    EXPECT_TRUE(hits("void f()\n{\n    return;\n}\n"
                     "bool leaked = false;\n",
                     "file-scope-state"));
}

TEST(LintLexer, SkipsCommentsAndStrings)
{
    EXPECT_FALSE(hits("// rand() would be bad here\n", "raw-random"));
    EXPECT_FALSE(hits("/* calls time(nullptr) in spirit */\n",
                      "wall-clock"));
    EXPECT_FALSE(hits("const char *kMsg = \"use std::cout here\";\n",
                      "raw-io"));
    EXPECT_FALSE(hits(
        "const char *kDoc = R\"(std::priority_queue is banned)\";\n",
        "priority-queue"));
    // Digit separators must not open a character literal that then
    // swallows real code.
    EXPECT_TRUE(hits("uint64_t big = 1'000'000;\nint r = rand();\n",
                     "raw-random"));
    // Preprocessor directives are opaque to the rules.
    EXPECT_FALSE(hits("#define CALL_PRINTF(x) printf(x)\n",
                      "raw-io"));
}

TEST(LintAllow, WaivesSameAndNextLine)
{
    EXPECT_FALSE(hits(
        "auto t0 = std::chrono::steady_clock::now(); "
        "// nscs-lint: allow(wall-clock): perf calibration only\n",
        "wall-clock"));
    EXPECT_FALSE(hits(
        "// nscs-lint: allow(wall-clock): perf calibration only\n"
        "auto t0 = std::chrono::steady_clock::now();\n",
        "wall-clock"));
}

TEST(LintAllow, ScopeIsTight)
{
    // An allow two lines up does not waive, and an allow for one rule
    // does not waive another.
    EXPECT_TRUE(hits(
        "// nscs-lint: allow(wall-clock): calibration\n"
        "int unrelated = 0;\n"
        "auto t0 = std::chrono::steady_clock::now();\n",
        "wall-clock"));
    EXPECT_TRUE(hits(
        "// nscs-lint: allow(raw-random): wrong rule\n"
        "auto t0 = std::chrono::steady_clock::now();\n",
        "wall-clock"));
}

TEST(LintAllow, MalformedAllowIsAFinding)
{
    EXPECT_TRUE(hits("// nscs-lint: allow(no-such-rule): reason\n",
                     "bad-allow"));
    EXPECT_TRUE(hits("// nscs-lint: allow(wall-clock)\n",
                     "bad-allow"));
    EXPECT_TRUE(hits("// nscs-lint: allow(wall-clock\n",
                     "bad-allow"));
    // A reasonless allow must not waive the finding either.
    const std::string src =
        "void f()\n{\n"
        "    // nscs-lint: allow(wall-clock)\n"
        "    auto t0 = std::chrono::steady_clock::now();\n"
        "}\n";
    auto rules = rulesHit(src);
    EXPECT_EQ(2u, rules.size());
    EXPECT_TRUE(hits(src, "bad-allow"));
    EXPECT_TRUE(hits(src, "wall-clock"));
}

TEST(LintFindings, CarryFileLineAndOrder)
{
    auto findings = lintSource(
        "src/foo.cc",
        "int b = 0;\n"
        "void f()\n{\n"
        "    int a = rand();\n"
        "    std::cout << a;\n"
        "}\n");
    ASSERT_EQ(3u, findings.size());
    EXPECT_EQ("src/foo.cc", findings[0].file);
    EXPECT_EQ(1u, findings[0].line);
    EXPECT_EQ("file-scope-state", findings[0].rule);
    EXPECT_EQ(4u, findings[1].line);
    EXPECT_EQ("raw-random", findings[1].rule);
    EXPECT_EQ(5u, findings[2].line);
    EXPECT_EQ("raw-io", findings[2].rule);
}

TEST(LintFiles, OnlyCcAndHhAreLintable)
{
    EXPECT_TRUE(lintableFile("src/core/core.cc"));
    EXPECT_TRUE(lintableFile("src/core/core.hh"));
    EXPECT_FALSE(lintableFile("README.md"));
    EXPECT_FALSE(lintableFile("BENCH_core.json"));
    EXPECT_FALSE(lintableFile("script.cchh.txt"));
}

TEST(LintRawSerialize, FlagsRawByteSerialization)
{
    EXPECT_TRUE(hits("auto *p = reinterpret_cast<char *>(&state);",
                     "raw-serialize"));
    EXPECT_TRUE(hits("memcpy(buf, &state, sizeof(state));",
                     "raw-serialize"));
    EXPECT_TRUE(hits("std::memcpy(buf, &state, sizeof(state));",
                     "raw-serialize"));
    EXPECT_TRUE(hits("memmove(dst, src, n);", "raw-serialize"));
    EXPECT_TRUE(hits("fwrite(&state, sizeof(state), 1, f);",
                     "raw-serialize"));
    EXPECT_TRUE(hits("fread(&state, sizeof(state), 1, f);",
                     "raw-serialize"));
}

TEST(LintRawSerialize, IgnoresLookalikesAndBitCast)
{
    // std::bit_cast is the sanctioned value-level reinterpretation.
    EXPECT_FALSE(hits("auto b = std::bit_cast<uint64_t>(d);",
                      "raw-serialize"));
    // Names inside strings and comments are not code.
    EXPECT_FALSE(hits("const char *s = \"memcpy\";",
                      "raw-serialize"));
    EXPECT_FALSE(hits("// reinterpret_cast is banned here\nint x;",
                      "raw-serialize"));
    // Identifier-boundary discipline.
    EXPECT_FALSE(hits("my_memcpy(buf, src, n);", "raw-serialize"));
    EXPECT_FALSE(hits("obj.fread(n);", "raw-serialize"));
}

TEST(LintRawSerialize, AllowCommentWaives)
{
    EXPECT_FALSE(hits(
        "// nscs-lint: allow(raw-serialize): fixed-layout scratch\n"
        "memcpy(buf, &state, sizeof(state));",
        "raw-serialize"));
}

TEST(LintSimdGuard, FlagsIntrinsicsOutsideDispatchLayer)
{
    EXPECT_TRUE(hits("__m256i acc = _mm256_setzero_si256();",
                     "simd-guard"));
    EXPECT_TRUE(hits("auto v = _mm512_loadu_si512(p);", "simd-guard"));
    EXPECT_TRUE(hits("__m128i x;", "simd-guard"));
    EXPECT_TRUE(hits("__mmask8 m = 0;", "simd-guard"));
    EXPECT_TRUE(hits("uint8x16_t v = vld1q_u8(p);", "simd-guard"));
    EXPECT_TRUE(hits("auto s = vaddq_u64(a, b);", "simd-guard"));
    // Intrinsic headers are findable even though stripToCode blanks
    // preprocessor directives (the rule scans raw lines).
    EXPECT_TRUE(hits("#include <immintrin.h>\n", "simd-guard"));
    EXPECT_TRUE(hits("#include <arm_neon.h>\n", "simd-guard"));
}

TEST(LintSimdGuard, IgnoresLookalikesAndDispatchCalls)
{
    // The blessed route: nscs::simd::ops() dispatch calls.
    EXPECT_FALSE(hits("const simd::Ops &so = simd::ops();\n"
                      "so.foldRow(planes, stride, pc, row, words);",
                      "simd-guard"));
    EXPECT_FALSE(hits("simd::setActiveLevel(simd::Level::Avx2);",
                      "simd-guard"));
    // Identifier lookalikes must not trip the token heuristics.
    EXPECT_FALSE(hits("int velocity_sq_ = vel * vel;", "simd-guard"));
    EXPECT_FALSE(hits("uint64_t mask_t2 = 0;", "simd-guard"));
    EXPECT_FALSE(hits("#include <cstdint>\n", "simd-guard"));
    // Intrinsic names in comments or strings never count.
    EXPECT_FALSE(hits("// uses _mm256_add_epi64 under the hood\n",
                      "simd-guard"));
    EXPECT_FALSE(hits("log(\"_mm512_setzero_si512\");", "simd-guard"));
}

TEST(LintSimdGuard, DispatchLayerAndWaiversAreExempt)
{
    // The dispatch layer itself hosts the intrinsics.
    EXPECT_TRUE(lintSource("src/util/simd.cc",
                           "void f() { __m256i a = "
                           "_mm256_setzero_si256(); }")
                    .empty());
    EXPECT_TRUE(lintSource("src/util/simd.hh",
                           "#include <immintrin.h>\n")
                    .empty());
    // Elsewhere an allow comment with a reason waives it.
    EXPECT_FALSE(hits("// nscs-lint: allow(simd-guard): one-off "
                      "prefetch hint\n"
                      "_mm_prefetch(p, _MM_HINT_T0);",
                      "simd-guard"));
}

TEST(LintRules, CatalogueIsStable)
{
    const auto &ids = nscs::lint::ruleIds();
    ASSERT_EQ(8u, ids.size());
    EXPECT_EQ("wall-clock", ids[0]);
    EXPECT_EQ("raw-random", ids[1]);
    EXPECT_EQ("raw-io", ids[2]);
    EXPECT_EQ("priority-queue", ids[3]);
    EXPECT_EQ("raw-serialize", ids[4]);
    EXPECT_EQ("file-scope-state", ids[5]);
    EXPECT_EQ("simd-guard", ids[6]);
    EXPECT_EQ("bad-allow", ids[7]);
}
