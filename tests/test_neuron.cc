/**
 * @file
 * Unit and property tests for the digital neuron model: update
 * semantics, classification, analytic fast-forward and the behaviour
 * gallery.
 */

#include <gtest/gtest.h>

#include "neuron/behaviors.hh"
#include "neuron/neuron.hh"
#include "neuron/params.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/saturate.hh"

namespace nscs {
namespace {

NeuronParams
base()
{
    NeuronParams p;
    p.threshold = 10;
    return p;
}

// --- validation ------------------------------------------------------------

TEST(NeuronParamsDeath, RejectsBadValues)
{
    NeuronParams p = base();
    p.synWeight[1] = 300;
    EXPECT_EXIT(validateNeuronParams(p, "t"),
                ::testing::ExitedWithCode(1), "synWeight");

    p = base();
    p.threshold = 0;
    EXPECT_EXIT(validateNeuronParams(p, "t"),
                ::testing::ExitedWithCode(1), "threshold");

    p = base();
    p.negThreshold = -1;
    EXPECT_EXIT(validateNeuronParams(p, "t"),
                ::testing::ExitedWithCode(1), "negThreshold");

    p = base();
    p.thresholdMaskBits = 17;
    EXPECT_EXIT(validateNeuronParams(p, "t"),
                ::testing::ExitedWithCode(1), "thresholdMaskBits");

    p = base();
    p.potentialBits = 5;
    EXPECT_EXIT(validateNeuronParams(p, "t"),
                ::testing::ExitedWithCode(1), "potentialBits");

    p = base();
    p.threshold = satMax(20);
    p.thresholdMaskBits = 8;
    EXPECT_EXIT(validateNeuronParams(p, "t"),
                ::testing::ExitedWithCode(1), "exceeds");
}

TEST(NeuronParams, JsonRoundTripNonDefault)
{
    NeuronParams p;
    p.synWeight = {3, -7, 255, -255};
    p.synStochastic = {true, false, true, false};
    p.leak = -9;
    p.leakReversal = true;
    p.leakStochastic = false;
    p.threshold = 77;
    p.negThreshold = 33;
    p.thresholdMaskBits = 5;
    p.resetMode = ResetMode::Linear;
    p.negSaturate = false;
    p.resetPotential = 4;
    p.initialPotential = -2;
    NeuronParams q = neuronParamsFromJson(neuronParamsToJson(p));
    EXPECT_EQ(p, q);
}

TEST(NeuronParams, JsonDefaultIsEmptyObject)
{
    NeuronParams p;
    EXPECT_EQ(neuronParamsToJson(p).dump(), "{}");
    NeuronParams q = neuronParamsFromJson(parseJson("{}").value);
    EXPECT_EQ(p, q);
}

// --- synaptic integration --------------------------------------------------

TEST(Integrate, DeterministicAddsTypedWeight)
{
    NeuronParams p = base();
    p.synWeight = {5, -3, 100, -100};
    EXPECT_EQ(integrateSynapse(0, p, 0, nullptr), 5);
    EXPECT_EQ(integrateSynapse(0, p, 1, nullptr), -3);
    EXPECT_EQ(integrateSynapse(10, p, 2, nullptr), 110);
    EXPECT_EQ(integrateSynapse(10, p, 3, nullptr), -90);
}

TEST(Integrate, SaturatesAtRegisterBounds)
{
    NeuronParams p = base();
    p.synWeight[0] = 255;
    int32_t v = satMax(20) - 10;
    EXPECT_EQ(integrateSynapse(v, p, 0, nullptr), satMax(20));
    p.synWeight[0] = -255;
    v = satMin(20) + 10;
    EXPECT_EQ(integrateSynapse(v, p, 0, nullptr), satMin(20));
}

TEST(Integrate, StochasticMatchesProbability)
{
    NeuronParams p = base();
    p.synWeight[0] = 64;  // p = 64/256 = 0.25
    p.synStochastic[0] = true;
    Lfsr16 rng(0xBEEF);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        if (integrateSynapse(0, p, 0, &rng) == 1)
            ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Integrate, StochasticNegativeAddsMinusOne)
{
    NeuronParams p = base();
    p.synWeight[0] = -255;  // p ~ 255/256, increment -1
    p.synStochastic[0] = true;
    Lfsr16 rng(0x77);
    int v = 0;
    for (int i = 0; i < 100; ++i)
        v = integrateSynapse(v, p, 0, &rng);
    EXPECT_LE(v, -90);
    EXPECT_GE(v, -100);
}

TEST(Integrate, StochasticConsumesExactlyOneDraw)
{
    NeuronParams p = base();
    p.synStochastic[0] = true;
    p.synWeight[0] = 10;
    Lfsr16 rng(0x21);
    integrateSynapse(0, p, 0, &rng);
    EXPECT_EQ(rng.draws(), 1u);
    // Deterministic type: no draw.
    integrateSynapse(0, p, 1, &rng);
    EXPECT_EQ(rng.draws(), 1u);
}

TEST(IntegrateDeath, StochasticWithoutRngPanics)
{
    NeuronParams p = base();
    p.synStochastic[0] = true;
    EXPECT_DEATH(integrateSynapse(0, p, 0, nullptr), "PRNG");
}

// --- leak ------------------------------------------------------------------

TEST(Leak, DeterministicSigned)
{
    NeuronParams p = base();
    p.leak = 3;
    EXPECT_EQ(applyLeak(0, p, nullptr), 3);
    p.leak = -3;
    EXPECT_EQ(applyLeak(0, p, nullptr), -3);
    p.leak = 0;
    EXPECT_EQ(applyLeak(42, p, nullptr), 42);
}

TEST(Leak, ReversalFollowsSign)
{
    NeuronParams p = base();
    p.leak = -2;
    p.leakReversal = true;
    EXPECT_EQ(applyLeak(10, p, nullptr), 8);    // decay down
    EXPECT_EQ(applyLeak(-10, p, nullptr), -8);  // decay up
    EXPECT_EQ(applyLeak(0, p, nullptr), 0);     // sgn(0) == 0
}

TEST(Leak, ReversalDivergesWithPositiveLeak)
{
    NeuronParams p = base();
    p.leak = 2;
    p.leakReversal = true;
    EXPECT_EQ(applyLeak(5, p, nullptr), 7);
    EXPECT_EQ(applyLeak(-5, p, nullptr), -7);
}

TEST(Leak, StochasticRate)
{
    NeuronParams p = base();
    p.leak = -128;  // p = 0.5, step -1
    p.leakStochastic = true;
    Lfsr16 rng(0xD00D);
    int32_t v = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i)
        v = applyLeak(v, p, &rng);
    EXPECT_NEAR(static_cast<double>(-v) / n, 0.5, 0.05);
}

// --- threshold / fire / reset ----------------------------------------------

TEST(Fire, StoreResetToR)
{
    NeuronParams p = base();
    p.threshold = 10;
    p.resetPotential = 2;
    auto r = thresholdFireReset(10, p, nullptr);
    EXPECT_TRUE(r.fired);
    EXPECT_EQ(r.v, 2);
    r = thresholdFireReset(9, p, nullptr);
    EXPECT_FALSE(r.fired);
    EXPECT_EQ(r.v, 9);
}

TEST(Fire, LinearResetSubtracts)
{
    NeuronParams p = base();
    p.threshold = 10;
    p.resetMode = ResetMode::Linear;
    auto r = thresholdFireReset(23, p, nullptr);
    EXPECT_TRUE(r.fired);
    EXPECT_EQ(r.v, 13);
}

TEST(Fire, NoneResetKeepsPotential)
{
    NeuronParams p = base();
    p.threshold = 10;
    p.resetMode = ResetMode::None;
    auto r = thresholdFireReset(15, p, nullptr);
    EXPECT_TRUE(r.fired);
    EXPECT_EQ(r.v, 15);
}

TEST(Fire, NegativeSaturates)
{
    NeuronParams p = base();
    p.negThreshold = 20;
    p.negSaturate = true;
    auto r = thresholdFireReset(-21, p, nullptr);
    EXPECT_FALSE(r.fired);
    EXPECT_EQ(r.v, -20);
    r = thresholdFireReset(-20, p, nullptr);
    EXPECT_EQ(r.v, -20);
}

TEST(Fire, NegativeResetModes)
{
    NeuronParams p = base();
    p.negThreshold = 20;
    p.negSaturate = false;
    p.resetPotential = 5;

    p.resetMode = ResetMode::Store;
    EXPECT_EQ(thresholdFireReset(-25, p, nullptr).v, -5);

    p.resetMode = ResetMode::Linear;
    EXPECT_EQ(thresholdFireReset(-25, p, nullptr).v, -5);

    p.resetMode = ResetMode::None;
    EXPECT_EQ(thresholdFireReset(-25, p, nullptr).v, -25);
}

TEST(Fire, StochasticThresholdRaisesBar)
{
    NeuronParams p = base();
    p.threshold = 10;
    p.thresholdMaskBits = 4;  // eta in [0, 15]
    Lfsr16 rng(0xFACE);
    int fired = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i)
        if (thresholdFireReset(17, p, &rng).fired)
            ++fired;
    // Fires when eta <= 7: probability 0.5.
    EXPECT_NEAR(static_cast<double>(fired) / n, 0.5, 0.05);
    // Always fires when v >= threshold + 15.
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(thresholdFireReset(25, p, &rng).fired);
}

TEST(Fire, EndOfTickOrderIsLeakThenThreshold)
{
    // v=9, leak +1, threshold 10: leak applies first, so it fires.
    NeuronParams p = base();
    p.threshold = 10;
    p.leak = 1;
    int32_t v = 9;
    EXPECT_TRUE(endOfTickUpdate(v, p, nullptr));
    EXPECT_EQ(v, 0);

    // v=10, leak -1: post-leak 9 < 10: no fire.
    p.leak = -1;
    v = 10;
    EXPECT_FALSE(endOfTickUpdate(v, p, nullptr));
    EXPECT_EQ(v, 9);
}

TEST(Fire, ApplyNegativeRuleIdempotentForSkippableClasses)
{
    Xoshiro256 rng(99);
    for (int trial = 0; trial < 500; ++trial) {
        NeuronParams p = base();
        p.negThreshold = static_cast<int32_t>(rng.below(50));
        p.negSaturate = rng.chance(0.5);
        p.resetMode = static_cast<ResetMode>(rng.below(3));
        p.resetPotential = static_cast<int32_t>(rng.range(-40, 40));
        if (classifyNeuron(p) == UpdateClass::Dense)
            continue;
        auto v0 = static_cast<int32_t>(rng.range(-200, 200));
        int32_t v1 = applyNegativeRule(v0, p);
        int32_t v2 = applyNegativeRule(v1, p);
        EXPECT_EQ(v1, v2) << "params trial " << trial;
    }
}

// --- classification ----------------------------------------------------------

TEST(Classify, PureWhenNoLeakNoPerTickDraws)
{
    NeuronParams p = base();
    EXPECT_EQ(classifyNeuron(p), UpdateClass::Pure);
    p.synStochastic[0] = true;  // event-driven draws only
    EXPECT_EQ(classifyNeuron(p), UpdateClass::Pure);
}

TEST(Classify, DenseOnPerTickDraws)
{
    NeuronParams p = base();
    p.thresholdMaskBits = 1;
    EXPECT_EQ(classifyNeuron(p), UpdateClass::Dense);
    p = base();
    p.leakStochastic = true;
    EXPECT_EQ(classifyNeuron(p), UpdateClass::Dense);
}

TEST(Classify, DenseOnReversalWithLeak)
{
    NeuronParams p = base();
    p.leak = -1;
    p.leakReversal = true;
    EXPECT_EQ(classifyNeuron(p), UpdateClass::Dense);
}

TEST(Classify, DenseOnNegativeLinearReset)
{
    NeuronParams p = base();
    p.negThreshold = 5;
    p.negSaturate = false;
    p.resetMode = ResetMode::Linear;
    EXPECT_EQ(classifyNeuron(p), UpdateClass::Dense);
}

TEST(Classify, LazyLeakCases)
{
    NeuronParams p = base();
    p.leak = 2;
    p.negSaturate = true;
    EXPECT_EQ(classifyNeuron(p), UpdateClass::LazyLeak);

    p.negSaturate = false;
    EXPECT_EQ(classifyNeuron(p), UpdateClass::Dense);

    p = base();
    p.leak = -2;
    p.negSaturate = true;
    EXPECT_EQ(classifyNeuron(p), UpdateClass::LazyLeak);

    p.negSaturate = false;
    p.resetMode = ResetMode::None;
    EXPECT_EQ(classifyNeuron(p), UpdateClass::LazyLeak);

    p.resetMode = ResetMode::Store;
    EXPECT_EQ(classifyNeuron(p), UpdateClass::Dense);
}

// --- fast-forward property tests --------------------------------------------

/** Sweep seeds; each seed generates a random skippable neuron. */
class FastForwardProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(FastForwardProperty, MatchesStepByStep)
{
    setQuiet(true);
    Xoshiro256 rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);

    // Draw until the parameters land in a skippable class (the only
    // classes leakForward/nextFireDelta are defined for).
    NeuronParams p;
    for (int attempt = 0; ; ++attempt) {
        ASSERT_LT(attempt, 100) << "generator failed to find a "
                                   "skippable parameter set";
        p = NeuronParams{};
        p.leak = static_cast<int16_t>(rng.range(-20, 20));
        p.threshold = static_cast<int32_t>(rng.range(1, 400));
        p.negThreshold = static_cast<int32_t>(rng.below(200));
        p.negSaturate = rng.chance(0.5);
        p.resetMode = static_cast<ResetMode>(rng.below(3));
        p.resetPotential = static_cast<int32_t>(rng.range(-100, 100));
        if (classifyNeuron(p) != UpdateClass::Dense)
            break;
    }

    // Start from a normalised state (reset contract), then follow
    // the unstimulated trajectory through up to three fires: the
    // post-fire state is a legal resume point for the fast-forward
    // (a Store reset can even park V below -beta).
    auto v0 = applyNegativeRule(
        static_cast<int32_t>(rng.range(-600, 600)), p);

    const uint64_t horizon = 3000;
    for (int segment = 0; segment < 3; ++segment) {
        std::vector<int32_t> traj;  // traj[k] = V after k updates
        traj.push_back(v0);
        uint64_t fire_at = 0;  // 0 = none within horizon
        int32_t v = v0;
        int32_t v_post_fire = 0;
        for (uint64_t k = 1; k <= horizon; ++k) {
            bool fired = endOfTickUpdate(v, p, nullptr);
            if (fired) {
                fire_at = k;
                v_post_fire = v;
                break;
            }
            traj.push_back(v);
        }

        auto delta = nextFireDelta(v0, p);
        if (fire_at > 0) {
            ASSERT_TRUE(delta.has_value())
                << "stepper fired at " << fire_at << " (segment "
                << segment << ") but nextFireDelta predicts never";
            EXPECT_EQ(*delta, fire_at) << "segment " << segment;
        } else if (delta.has_value()) {
            EXPECT_GT(*delta, horizon);
        }

        // leakForward must match every pre-fire sample.
        for (uint64_t k = 0; k < traj.size(); ++k)
            ASSERT_EQ(leakForward(v0, p, k), traj[k])
                << "diverged at k=" << k << " leak=" << p.leak
                << " segment " << segment;

        if (fire_at == 0)
            break;
        v0 = v_post_fire;  // resume from the post-fire state
    }
    setQuiet(false);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FastForwardProperty,
                         ::testing::Range(0, 120));

TEST(FastForward, PacemakerPeriodExact)
{
    NeuronParams p;
    p.leak = 2;
    p.threshold = 16;
    auto d = nextFireDelta(0, p);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(*d, 8u);
    // After the fire the cycle repeats from the reset potential.
    EXPECT_EQ(leakForward(0, p, 7), 14);
}

TEST(FastForward, RefireEveryTickWithNoneReset)
{
    NeuronParams p;
    p.threshold = 5;
    p.resetMode = ResetMode::None;
    auto d = nextFireDelta(7, p);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(*d, 1u);
}

TEST(FastForwardDeath, RejectsDenseNeuron)
{
    NeuronParams p;
    p.thresholdMaskBits = 2;
    EXPECT_DEATH((void)leakForward(0, p, 5), "Dense");
    EXPECT_DEATH((void)nextFireDelta(0, p), "Dense");
}

// --- Neuron wrapper ----------------------------------------------------------

TEST(NeuronClass, TonicIntegration)
{
    NeuronParams p;
    p.synWeight[0] = 1;
    p.threshold = 4;
    Neuron n(p);
    std::vector<uint32_t> spikes;
    for (uint32_t t = 0; t < 20; ++t) {
        n.receive(0);
        if (n.tick())
            spikes.push_back(t);
    }
    EXPECT_EQ(spikes, (std::vector<uint32_t>{3, 7, 11, 15, 19}));
}

// --- behaviour gallery -------------------------------------------------------

TEST(Behaviors, GalleryIsComplete)
{
    EXPECT_EQ(allBehaviors().size(), 12u);
    for (Behavior b : allBehaviors()) {
        EXPECT_FALSE(behaviorName(b).empty());
        EXPECT_FALSE(behaviorDescription(b).empty());
        BehaviorPreset preset = behaviorPreset(b);
        EXPECT_EQ(preset.behavior, b);
    }
}

TEST(Behaviors, TonicSpikingIsRegular)
{
    auto tr = runBehavior(behaviorPreset(Behavior::TonicSpiking), 400);
    ASSERT_GE(tr.spikes.size(), 50u);
    EXPECT_NEAR(meanIsi(tr.spikes), 4.0, 0.01);
    EXPECT_LT(isiCv(tr.spikes), 0.01);
}

TEST(Behaviors, TonicBurstingHasBurstStructure)
{
    auto tr = runBehavior(behaviorPreset(Behavior::TonicBursting), 400);
    ASSERT_GE(tr.spikes.size(), 20u);
    // Bursts of 3 spikes in consecutive ticks, gaps of 6.
    int ones = 0, sixes = 0;
    for (size_t i = 1; i < tr.spikes.size(); ++i) {
        uint32_t isi = tr.spikes[i] - tr.spikes[i - 1];
        if (isi == 1)
            ++ones;
        else if (isi == 6)
            ++sixes;
    }
    EXPECT_GT(ones, 2 * sixes / 2);
    EXPECT_GT(sixes, 0);
    EXPECT_GT(isiCv(tr.spikes), 0.5);
}

TEST(Behaviors, IntegratorCountsInputs)
{
    auto preset = behaviorPreset(Behavior::Integrator);
    auto tr = runBehavior(preset, 420);
    // Inputs every 7 ticks, threshold 3: one spike per 3 inputs.
    uint64_t inputs = tr.inputTicks.size();
    EXPECT_EQ(tr.spikes.size(), inputs / 3);
}

TEST(Behaviors, CoincidenceDetectorOnlyFiresOnPairs)
{
    auto tr = runBehavior(behaviorPreset(Behavior::CoincidenceDetector),
                          100);
    // Pairs end at ticks 6, 31, 61; singles at 20, 45 must not fire.
    EXPECT_EQ(tr.spikes,
              (std::vector<uint32_t>{6, 31, 61}));
}

TEST(Behaviors, PacemakerFiresWithoutInput)
{
    auto tr = runBehavior(behaviorPreset(Behavior::Pacemaker), 200);
    EXPECT_TRUE(tr.inputTicks.empty());
    ASSERT_GE(tr.spikes.size(), 10u);
    EXPECT_NEAR(meanIsi(tr.spikes), 8.0, 0.01);
}

TEST(Behaviors, StochasticSpikerIsIrregular)
{
    auto tr = runBehavior(behaviorPreset(Behavior::StochasticSpiker),
                          4000);
    ASSERT_GE(tr.spikes.size(), 100u);
    EXPECT_GT(isiCv(tr.spikes), 0.1);
}

TEST(Behaviors, RateDividerQuartersTheRate)
{
    auto tr = runBehavior(behaviorPreset(Behavior::RateDivider), 8000);
    double ratio = static_cast<double>(tr.spikes.size()) /
        static_cast<double>(tr.inputTicks.size());
    EXPECT_NEAR(ratio, 0.25, 0.03);
}

TEST(Behaviors, SaturatingInhibitionSilencesAndRebounds)
{
    auto tr = runBehavior(
        behaviorPreset(Behavior::SaturatingInhibition), 200);
    ASSERT_FALSE(tr.spikes.empty());
    // Silent while inhibited (inputs stop at tick 49).
    EXPECT_GE(tr.spikes.front(), 50u);
    // Climbs from the -10 floor at +1/tick to threshold 6.
    EXPECT_EQ(tr.spikes.front(), 65u);
    // Then fires regularly every 6 ticks.
    EXPECT_EQ(tr.spikes[1] - tr.spikes[0], 6u);
}

TEST(Behaviors, NegativeReboundFollowsInhibition)
{
    auto tr = runBehavior(behaviorPreset(Behavior::NegativeRebound),
                          400);
    ASSERT_GE(tr.spikes.size(), 3u);
    // Every spike lands within 6 ticks after an inhibitory input.
    for (uint32_t s : tr.spikes) {
        bool near = false;
        for (uint32_t in : tr.inputTicks)
            if (s >= in && s - in <= 6)
                near = true;
        EXPECT_TRUE(near) << "spike at " << s
                          << " without recent inhibition";
    }
}

TEST(Behaviors, AdaptationStretchesIsi)
{
    auto tr = runBehavior(behaviorPreset(Behavior::Adaptation), 300);
    ASSERT_GE(tr.spikes.size(), 10u);
    // Onset: ticks of drive until the first spike; steady state: the
    // self-inhibited period.  Adaptation means steady > onset.
    uint32_t onset = tr.spikes[0] + 1;
    uint32_t steady = tr.spikes[9] - tr.spikes[8];
    EXPECT_GT(steady, onset);
}

TEST(Behaviors, RefractoryEnforcesDeadTime)
{
    auto tr = runBehavior(behaviorPreset(Behavior::Refractory), 300);
    ASSERT_GE(tr.spikes.size(), 10u);
    // Driven every tick at weight 5 = threshold, yet ISIs are 4.
    for (size_t i = 1; i < tr.spikes.size(); ++i)
        EXPECT_GE(tr.spikes[i] - tr.spikes[i - 1], 4u);
}

TEST(Behaviors, ThresholdJitterAddsVariance)
{
    auto regular = runBehavior(behaviorPreset(Behavior::TonicSpiking),
                               2000);
    auto jitter = runBehavior(behaviorPreset(Behavior::ThresholdJitter),
                              2000);
    ASSERT_GE(jitter.spikes.size(), 50u);
    EXPECT_GT(isiCv(jitter.spikes), isiCv(regular.spikes) + 0.05);
}

TEST(Behaviors, IsiHelpersEdgeCases)
{
    EXPECT_EQ(meanIsi({}), 0.0);
    EXPECT_EQ(meanIsi({5}), 0.0);
    EXPECT_EQ(isiCv({1, 2}), 0.0);
    EXPECT_DOUBLE_EQ(meanIsi({0, 10, 20}), 10.0);
}

} // anonymous namespace
} // namespace nscs
