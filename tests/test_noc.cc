/**
 * @file
 * Tests for the network-on-chip: packet wire format, routing
 * decisions, cycle-accurate mesh traversal, arbitration, backpressure
 * and the delivery guarantee.
 */

#include <gtest/gtest.h>

#include <map>

#include "noc/mesh.hh"
#include "noc/packet.hh"
#include "noc/router.hh"
#include "util/rng.hh"

namespace nscs {
namespace {

// --- packet wire format ------------------------------------------------------

TEST(Packet, WireBitsBudget)
{
    EXPECT_EQ(packetWireBits(), 30u);
}

TEST(Packet, EncodeDecodeRoundTrip)
{
    for (int dx : {-256, -17, 0, 3, 255}) {
        for (int dy : {-256, -1, 0, 255}) {
            SpikePacket p;
            p.dx = static_cast<int16_t>(dx);
            p.dy = static_cast<int16_t>(dy);
            p.axon = 211;
            p.deliveryTick = 13;
            SpikePacket q = packetDecode(packetEncode(p, 16), 16);
            EXPECT_EQ(q.dx, p.dx);
            EXPECT_EQ(q.dy, p.dy);
            EXPECT_EQ(q.axon, p.axon);
            EXPECT_EQ(q.deliveryTick, 13u % 16);
        }
    }
}

TEST(PacketDeath, EncodeRejectsOverflow)
{
    SpikePacket p;
    p.dx = 300;
    EXPECT_DEATH((void)packetEncode(p, 16), "9-bit");
}

// --- routing decisions ---------------------------------------------------------

TEST(Router, DimensionOrderXFirst)
{
    SpikePacket p;
    p.dx = 3;
    p.dy = -2;
    EXPECT_EQ(routeOutput(p), Port::East);
    p.dx = -1;
    EXPECT_EQ(routeOutput(p), Port::West);
    p.dx = 0;
    EXPECT_EQ(routeOutput(p), Port::South);
    p.dy = 4;
    EXPECT_EQ(routeOutput(p), Port::North);
    p.dy = 0;
    EXPECT_EQ(routeOutput(p), Port::Local);
}

TEST(Router, ConsumeHopUpdatesOffsets)
{
    SpikePacket p;
    p.dx = 2;
    p.dy = -1;
    consumeHop(p, Port::East);
    EXPECT_EQ(p.dx, 1);
    EXPECT_EQ(p.hops, 1);
    consumeHop(p, Port::East);
    consumeHop(p, Port::South);
    EXPECT_EQ(p.dx, 0);
    EXPECT_EQ(p.dy, 0);
    EXPECT_EQ(p.hops, 3);
    consumeHop(p, Port::Local);
    EXPECT_EQ(p.hops, 3);
}

TEST(Router, PortNames)
{
    EXPECT_STREQ(portName(Port::Local), "local");
    EXPECT_STREQ(portName(Port::East), "east");
}

// --- mesh basics -----------------------------------------------------------------

TEST(Mesh, SelfDeliveryTakesOneCycle)
{
    Mesh mesh({1, 1, 4});
    SpikePacket p;
    p.axon = 7;
    ASSERT_TRUE(mesh.inject(0, 0, p));
    mesh.stepCycle();
    ASSERT_EQ(mesh.deliveries().size(), 1u);
    EXPECT_EQ(mesh.deliveries()[0].packet.axon, 7);
    EXPECT_EQ(mesh.deliveries()[0].packet.hops, 0);
    EXPECT_TRUE(mesh.idle());
}

TEST(Mesh, ManhattanPathLength)
{
    Mesh mesh({8, 8, 4});
    SpikePacket p;
    p.dx = 3;
    p.dy = 2;
    ASSERT_TRUE(mesh.inject(1, 1, p));
    uint64_t cycles = 0;
    while (mesh.deliveries().empty()) {
        mesh.stepCycle();
        ASSERT_LT(++cycles, 100u);
    }
    const MeshDelivery &d = mesh.deliveries()[0];
    EXPECT_EQ(d.x, 4u);
    EXPECT_EQ(d.y, 3u);
    EXPECT_EQ(d.packet.hops, 5);
    // Unloaded latency: one cycle per hop plus the local exit.
    EXPECT_EQ(cycles, 6u);
}

TEST(Mesh, NegativeOffsetsRouteWestSouth)
{
    Mesh mesh({8, 8, 4});
    SpikePacket p;
    p.dx = -2;
    p.dy = -3;
    ASSERT_TRUE(mesh.inject(5, 5, p));
    for (int i = 0; i < 20 && mesh.deliveries().empty(); ++i)
        mesh.stepCycle();
    ASSERT_EQ(mesh.deliveries().size(), 1u);
    EXPECT_EQ(mesh.deliveries()[0].x, 3u);
    EXPECT_EQ(mesh.deliveries()[0].y, 2u);
}

TEST(Mesh, BackpressureRejectsWhenLocalFifoFull)
{
    Mesh mesh({1, 1, 2});
    SpikePacket p;
    EXPECT_TRUE(mesh.inject(0, 0, p));
    EXPECT_TRUE(mesh.inject(0, 0, p));
    EXPECT_FALSE(mesh.inject(0, 0, p));
    EXPECT_EQ(mesh.stats().injectStalls, 1u);
    mesh.stepCycle();
    EXPECT_TRUE(mesh.inject(0, 0, p));
}

TEST(Mesh, ResetClearsEverything)
{
    Mesh mesh({2, 2, 4});
    SpikePacket p;
    p.dx = 1;
    mesh.inject(0, 0, p);
    mesh.stepCycle();
    mesh.reset();
    EXPECT_TRUE(mesh.idle());
    EXPECT_EQ(mesh.stats().injected, 0u);
    EXPECT_EQ(mesh.cycle(), 0u);
    EXPECT_TRUE(mesh.deliveries().empty());
}

TEST(Mesh, OneFlitPerOutputPerCycle)
{
    // Two packets injected at the same router, both heading east:
    // they serialise through the east output.
    Mesh mesh({3, 1, 4});
    SpikePacket p;
    p.dx = 2;
    ASSERT_TRUE(mesh.inject(0, 0, p));
    ASSERT_TRUE(mesh.inject(0, 0, p));
    mesh.stepCycle();
    // After one cycle only one flit can have left router 0.
    EXPECT_EQ(mesh.router(1, 0).occupancy(), 1u);
    EXPECT_EQ(mesh.router(0, 0).occupancy(), 1u);
}

// --- delivery guarantee property -------------------------------------------------

class MeshDelivers : public ::testing::TestWithParam<int>
{
};

TEST_P(MeshDelivers, EveryInjectedPacketExactlyOnce)
{
    uint64_t seed = static_cast<uint64_t>(GetParam()) * 104729 + 7;
    Xoshiro256 rng(seed);
    uint32_t w = 2 + static_cast<uint32_t>(rng.below(7));
    uint32_t h = 2 + static_cast<uint32_t>(rng.below(7));
    Mesh mesh({w, h, 2 + static_cast<uint32_t>(rng.below(4))});

    // Tag each packet through the axon field.
    struct Expect { uint32_t x, y; };
    std::map<uint16_t, Expect> expect;
    uint16_t tag = 0;
    std::vector<std::pair<std::pair<uint32_t, uint32_t>, SpikePacket>>
        pending;
    for (int i = 0; i < 120; ++i) {
        uint32_t sx = static_cast<uint32_t>(rng.below(w));
        uint32_t sy = static_cast<uint32_t>(rng.below(h));
        uint32_t txx = static_cast<uint32_t>(rng.below(w));
        uint32_t tyy = static_cast<uint32_t>(rng.below(h));
        SpikePacket p;
        p.dx = static_cast<int16_t>(static_cast<int32_t>(txx) -
                                    static_cast<int32_t>(sx));
        p.dy = static_cast<int16_t>(static_cast<int32_t>(tyy) -
                                    static_cast<int32_t>(sy));
        p.axon = tag;
        expect[tag] = {txx, tyy};
        ++tag;
        pending.push_back({{sx, sy}, p});
    }

    std::map<uint16_t, Expect> got;
    uint64_t guard = 0;
    while ((!pending.empty() || !mesh.idle()) && guard < 20000) {
        // Re-offer whatever still waits (backpressure retry).
        std::vector<std::pair<std::pair<uint32_t, uint32_t>,
                              SpikePacket>> still;
        for (auto &pr : pending)
            if (!mesh.inject(pr.first.first, pr.first.second,
                             pr.second))
                still.push_back(pr);
        pending.swap(still);
        mesh.stepCycle();
        for (const MeshDelivery &d : mesh.deliveries()) {
            ASSERT_EQ(got.count(d.packet.axon), 0u)
                << "duplicate delivery of tag " << d.packet.axon;
            got[d.packet.axon] = {d.x, d.y};
        }
        mesh.clearDeliveries();
        ++guard;
    }

    ASSERT_EQ(got.size(), expect.size()) << "lost packets";
    for (const auto &kv : expect) {
        ASSERT_TRUE(got.count(kv.first));
        EXPECT_EQ(got[kv.first].x, kv.second.x) << "tag " << kv.first;
        EXPECT_EQ(got[kv.first].y, kv.second.y) << "tag " << kv.first;
    }
    EXPECT_EQ(mesh.stats().delivered, expect.size());
}

INSTANTIATE_TEST_SUITE_P(Sweep, MeshDelivers, ::testing::Range(0, 25));

TEST(MeshStats, LatencyAndHopsTracked)
{
    Mesh mesh({4, 4, 4});
    SpikePacket p;
    p.dx = 3;
    mesh.inject(0, 0, p);
    for (int i = 0; i < 10; ++i)
        mesh.stepCycle();
    EXPECT_EQ(mesh.stats().delivered, 1u);
    EXPECT_DOUBLE_EQ(mesh.stats().hops.mean(), 3.0);
    EXPECT_GE(mesh.stats().latency.mean(), 4.0);
    EXPECT_EQ(mesh.stats().flitMoves, 3u);
}

} // anonymous namespace
} // namespace nscs
