/**
 * @file
 * Parallel tick engine tests: the ThreadPool primitive, and
 * bit-identical OutputSpike streams between Chip::tickParallel and
 * the serial engine across RNG seeds, thread counts, chip sizes,
 * execution engines and transport models.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "bench/workload.hh"
#include "chip/chip.hh"
#include "runtime/parallel.hh"

namespace nscs {
namespace {

TEST(ThreadPool, LaneCount)
{
    EXPECT_EQ(ThreadPool(0).lanes(), 1u);
    EXPECT_EQ(ThreadPool(1).lanes(), 1u);
    EXPECT_EQ(ThreadPool(4).lanes(), 4u);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    const uint32_t n = 1000;
    std::vector<std::atomic<uint32_t>> hits(n);
    pool.parallelFor(n, [&](uint32_t i) { ++hits[i]; });
    for (uint32_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i].load(), 1u) << "index " << i;
}

TEST(ThreadPool, ReusableAcrossManyJobs)
{
    ThreadPool pool(8);
    std::atomic<uint64_t> sum{0};
    for (int round = 0; round < 200; ++round)
        pool.parallelFor(64, [&](uint32_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 200ull * (64 * 63 / 2));
}

TEST(ThreadPool, VaryingCountsBackToBack)
{
    // Regression: a straggler from a small job must not claim a
    // stale cursor index against the next (larger) job's count —
    // alternate tiny and large index spaces with far more lanes
    // than tiny-job work to keep stragglers common.
    ThreadPool pool(8);
    std::vector<std::atomic<uint32_t>> hits(64);
    for (int round = 0; round < 500; ++round) {
        uint32_t count = (round % 2 == 0) ? 2 : 64;
        for (auto &h : hits)
            h.store(0);
        pool.parallelFor(count, [&](uint32_t i) { ++hits[i]; });
        for (uint32_t i = 0; i < count; ++i)
            ASSERT_EQ(hits[i].load(), 1u)
                << "round " << round << " index " << i;
    }
}

TEST(ThreadPool, EmptyAndSingleJobs)
{
    ThreadPool pool(4);
    pool.parallelFor(0, [&](uint32_t) { FAIL(); });
    uint32_t ran = 0;
    pool.parallelFor(1, [&](uint32_t i) { ran += i + 1; });
    EXPECT_EQ(ran, 1u);
}

/**
 * The cortical bench workload with every third neuron re-aimed at an
 * off-chip output line, so engine comparisons can assert on a real
 * OutputSpike stream (the stock workload only routes core-to-core).
 */
bench::CorticalWorkload
tappedWorkload(uint32_t side, uint64_t seed)
{
    bench::CorticalParams wp;
    wp.gridW = wp.gridH = side;
    wp.density = 32;
    wp.ratePerTick = 0.05;
    wp.seed = seed;
    bench::CorticalWorkload w = bench::makeCortical(wp);
    const uint32_t neurons = CoreGeometry{}.numNeurons;
    for (uint32_t c = 0; c < w.cores.size(); ++c) {
        for (uint32_t n = 0; n < neurons; n += 3) {
            NeuronDest &d = w.cores[c].dests[n];
            d = NeuronDest{};
            d.kind = NeuronDest::Kind::Output;
            d.line = c * neurons + n;
        }
    }
    return w;
}

/** Everything a run produces that must be engine-invariant. */
struct RunSnapshot
{
    std::vector<OutputSpike> spikes;
    ChipCounters chip;
    EnergyEvents events;
    RunPerf perf;
};

RunSnapshot
runTapped(uint32_t side, uint64_t seed, EngineKind ek, NocModel nm,
          uint32_t threads, uint64_t ticks = 40)
{
    bench::CorticalWorkload w = tappedWorkload(side, seed);
    auto sim = bench::makeCorticalSim(w, ek, nm, threads);
    RunSnapshot snap;
    snap.perf = sim->run(ticks);
    snap.spikes = sim->recorder().spikes();
    snap.chip = sim->chip().counters();
    snap.events = sim->chip().energyEvents();
    return snap;
}

void
expectIdentical(const RunSnapshot &a, const RunSnapshot &b)
{
    EXPECT_EQ(a.spikes, b.spikes);
    EXPECT_EQ(a.chip.ticks, b.chip.ticks);
    EXPECT_EQ(a.chip.coreActivations, b.chip.coreActivations);
    EXPECT_EQ(a.chip.spikesRouted, b.chip.spikesRouted);
    EXPECT_EQ(a.chip.spikesOut, b.chip.spikesOut);
    EXPECT_EQ(a.chip.spikesDropped, b.chip.spikesDropped);
    EXPECT_EQ(a.chip.hops, b.chip.hops);
    EXPECT_EQ(a.chip.lateDeliveries, b.chip.lateDeliveries);
    EXPECT_EQ(a.chip.meshCycles, b.chip.meshCycles);
    EXPECT_EQ(a.chip.injectRetries, b.chip.injectRetries);
    EXPECT_EQ(a.events.sops, b.events.sops);
    EXPECT_EQ(a.events.spikes, b.events.spikes);
    EXPECT_EQ(a.events.hops, b.events.hops);
}

TEST(ParallelTick, BitIdenticalClockEngine)
{
    for (uint64_t seed : {1ull, 42ull}) {
        RunSnapshot serial = runTapped(2, seed, EngineKind::Clock,
                                       NocModel::Functional, 0);
        ASSERT_FALSE(serial.spikes.empty());
        for (uint32_t threads : {1u, 2u, 8u}) {
            RunSnapshot par = runTapped(2, seed, EngineKind::Clock,
                                        NocModel::Functional, threads);
            expectIdentical(serial, par);
        }
    }
}

TEST(ParallelTick, BitIdenticalEventEngine)
{
    for (uint64_t seed : {1ull, 42ull}) {
        RunSnapshot serial = runTapped(2, seed, EngineKind::Event,
                                       NocModel::Functional, 0);
        ASSERT_FALSE(serial.spikes.empty());
        for (uint32_t threads : {1u, 2u, 8u}) {
            RunSnapshot par = runTapped(2, seed, EngineKind::Event,
                                        NocModel::Functional, threads);
            expectIdentical(serial, par);
        }
    }
}

TEST(ParallelTick, BitIdenticalCycleMesh)
{
    // The cycle-accurate mesh is order-sensitive (injection order
    // feeds arbitration), so this also checks that the merge phase
    // reproduces the serial injection sequence exactly.
    RunSnapshot serial = runTapped(2, 7, EngineKind::Event,
                                   NocModel::Cycle, 0);
    for (uint32_t threads : {2u, 8u}) {
        RunSnapshot par = runTapped(2, 7, EngineKind::Event,
                                    NocModel::Cycle, threads);
        expectIdentical(serial, par);
    }
}

TEST(ParallelTick, BitIdenticalAcrossChipSizes)
{
    for (uint32_t side : {1u, 2u, 4u}) {
        RunSnapshot serial = runTapped(side, 5, EngineKind::Clock,
                                       NocModel::Functional, 0);
        RunSnapshot par = runTapped(side, 5, EngineKind::Clock,
                                    NocModel::Functional, 8);
        expectIdentical(serial, par);
    }
}

TEST(ParallelTick, ExplicitTickParallelWithoutPool)
{
    // tickParallel on a threads=0 chip runs the two-phase
    // evaluate-then-route path on the calling thread; it must still
    // match the serial engine exactly.
    bench::CorticalWorkload w = tappedWorkload(2, 11);
    ChipParams cp;
    cp.width = cp.height = 2;
    cp.engine = EngineKind::Clock;
    Chip serial(cp, w.cores);
    Chip twophase(cp, w.cores);
    for (uint64_t t = 0; t < 30; ++t) {
        serial.injectInput(0, 1, t);
        twophase.injectInput(0, 1, t);
        serial.tickSerial();
        twophase.tickParallel();
    }
    EXPECT_EQ(serial.outputs(), twophase.outputs());
    EXPECT_EQ(serial.counters().spikesRouted,
              twophase.counters().spikesRouted);
}

TEST(ParallelTick, RunPerfStaysSane)
{
    RunSnapshot par = runTapped(2, 3, EngineKind::Clock,
                                NocModel::Functional, 4, 100);
    EXPECT_EQ(par.perf.ticks, 100u);
    EXPECT_GT(par.perf.seconds, 0.0);
    EXPECT_GT(par.perf.ticksPerSecond(), 0.0);
    EXPECT_EQ(par.perf.spikesOut, par.spikes.size());
    EXPECT_GT(par.perf.realTimeFactor(), 0.0);
}

TEST(ParallelTick, ResetKeepsParallelEngine)
{
    bench::CorticalWorkload w = tappedWorkload(2, 13);
    auto sim = bench::makeCorticalSim(w, EngineKind::Event,
                                      NocModel::Functional, 4);
    sim->run(25);
    std::vector<OutputSpike> first = sim->recorder().spikes();
    ASSERT_FALSE(first.empty());
    sim->reset();
    // Sources keep their own state, so re-add a fresh simulator run
    // by comparing against a brand-new serial simulator instead.
    auto fresh = bench::makeCorticalSim(w, EngineKind::Event,
                                        NocModel::Functional, 0);
    fresh->run(25);
    // Post-reset the chip itself must behave like a freshly built
    // one (counters cleared, parallel path still selected).
    EXPECT_EQ(sim->chip().counters().ticks, 0u);
    EXPECT_EQ(sim->chip().now(), 0u);
    EXPECT_EQ(fresh->recorder().spikes(), first);
}

} // namespace
} // namespace nscs
