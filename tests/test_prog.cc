/**
 * @file
 * Tests for the programming tool flow: network IR, compiler lowering
 * (axon allocation, splitter insertion, delay budgets), placement
 * policies and the standard corelets.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "baseline/reference_sim.hh"
#include "board/board.hh"
#include "chip/chip.hh"
#include "prog/compiler.hh"
#include "prog/corelet.hh"
#include "prog/network.hh"
#include "prog/placer.hh"
#include "util/logging.hh"

namespace nscs {
namespace {

NeuronParams
unitNeuron(int32_t threshold = 1)
{
    NeuronParams p;
    p.threshold = threshold;
    return p;
}

CompileOptions
smallOptions()
{
    CompileOptions opt;
    opt.geom.numAxons = 32;
    opt.geom.numNeurons = 32;
    opt.geom.delaySlots = 16;
    return opt;
}

/**
 * Compile and run a network on the chip: fire the given (input id,
 * tick) schedule and return all output spikes.
 */
std::vector<OutputSpike>
runOnChip(const Network &net, const CompileOptions &opt,
          const std::vector<std::pair<uint32_t, uint64_t>> &fires,
          uint64_t ticks,
          EngineKind ek = EngineKind::Event,
          NocModel nm = NocModel::Functional)
{
    CompiledModel model = compile(net, opt);
    ChipParams cp;
    cp.width = model.gridWidth;
    cp.height = model.gridHeight;
    cp.coreGeom = model.geom;
    cp.engine = ek;
    cp.noc = nm;
    Chip chip(cp, model.cores);
    for (uint64_t t = 0; t < ticks; ++t) {
        for (const auto &f : fires) {
            if (f.second != t)
                continue;
            for (const InputSpike &target :
                     model.inputTargets(net.inputName(f.first)))
                chip.injectInput(target.core, target.axon, t);
        }
        chip.tick();
    }
    return chip.outputs();
}

// --- network IR -------------------------------------------------------------

TEST(Network, PopulationBookkeeping)
{
    Network net;
    PopId a = net.addPopulation("a", 5, unitNeuron());
    PopId b = net.addPopulation("b", 3, unitNeuron(7));
    EXPECT_EQ(net.numPopulations(), 2u);
    EXPECT_EQ(net.numNeurons(), 8u);
    EXPECT_EQ(net.popSize(a), 5u);
    EXPECT_EQ(net.popName(b), "b");
    EXPECT_EQ(net.globalIndex({b, 0}), 5u);
    EXPECT_EQ(net.fromGlobalIndex(6), (NeuronRef{b, 1}));
    EXPECT_EQ(net.neuronParams({b, 2}).threshold, 7);
}

TEST(Network, ParamOverrides)
{
    Network net;
    PopId a = net.addPopulation("a", 4, unitNeuron(2));
    NeuronParams special = unitNeuron(9);
    net.setNeuronParams({a, 2}, special);
    EXPECT_EQ(net.neuronParams({a, 2}).threshold, 9);
    EXPECT_EQ(net.neuronParams({a, 1}).threshold, 2);
}

TEST(Network, ConnectGenerators)
{
    Network net;
    PopId a = net.addPopulation("a", 4, unitNeuron());
    PopId b = net.addPopulation("b", 4, unitNeuron());
    net.connectAllToAll(a, b, 0, 1);
    EXPECT_EQ(net.edges().size(), 16u);
    net.connectOneToOne(b, a, 1, 2);
    EXPECT_EQ(net.edges().size(), 20u);
    size_t before = net.edges().size();
    net.connectRandom(a, b, 0.5, 0, 1, 77);
    size_t added = net.edges().size() - before;
    EXPECT_GT(added, 2u);
    EXPECT_LT(added, 14u);
}

TEST(NetworkDeath, Validation)
{
    Network net;
    PopId a = net.addPopulation("a", 2, unitNeuron());
    EXPECT_EXIT(net.connect({a, 5}, {a, 0}, 0, 1),
                ::testing::ExitedWithCode(1), "outside");
    EXPECT_EXIT(net.connect({a, 0}, {a, 1}, 7, 1),
                ::testing::ExitedWithCode(1), "type class");
    EXPECT_EXIT(net.connect({a, 0}, {a, 1}, 0, 0),
                ::testing::ExitedWithCode(1), "delay");
    net.markOutput({a, 0});
    EXPECT_EXIT(net.markOutput({a, 0}),
                ::testing::ExitedWithCode(1), "already");
    net.addInput("x");
    EXPECT_EXIT(net.addInput("x"),
                ::testing::ExitedWithCode(1), "already");
}

// --- compiler ----------------------------------------------------------------

TEST(Compiler, DirectSingleCorePipeline)
{
    Network net;
    PopId a = net.addPopulation("a", 2, unitNeuron(2));
    uint32_t in = net.addInput("stim");
    net.bindInput(in, {a, 0}, 0);
    net.bindInput(in, {a, 1}, 0);
    net.markOutput({a, 0});
    net.markOutput({a, 1});

    CompiledModel model = compile(net, smallOptions());
    EXPECT_EQ(model.gridWidth * model.gridHeight, 1u);
    EXPECT_EQ(model.stats.splitterCores, 0u);
    EXPECT_EQ(model.numOutputs, 2u);
    // One shared axon for the input (same core, same type).
    EXPECT_EQ(model.inputTargets("stim").size(), 1u);

    // Threshold 2: two input fires produce one output spike each.
    auto out = runOnChip(net, smallOptions(),
                         {{in, 0}, {in, 1}}, 5);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].tick, 1u);
    EXPECT_EQ(out[1].tick, 1u);
}

TEST(Compiler, MultiCorePlacementAndRouting)
{
    // 40 neurons with 32-neuron cores: spans two cores; a one-to-one
    // chain from pop a to pop b must route across them.
    Network net;
    PopId a = net.addPopulation("a", 20, unitNeuron());
    PopId b = net.addPopulation("b", 20, unitNeuron());
    net.connectOneToOne(a, b, 0, 2);
    uint32_t in = net.addInput("kick");
    net.bindInput(in, {a, 17}, 0);
    uint32_t line = net.markOutput({b, 17});

    auto out = runOnChip(net, smallOptions(), {{in, 0}}, 8);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].line, line);
    // a fires at 0, edge delay 2: b integrates at 2, fires at 2.
    EXPECT_EQ(out[0].tick, 2u);
}

TEST(Compiler, SplitterInsertedForWideFanout)
{
    // One source feeding 3 cores' worth of targets needs relays.
    Network net;
    PopId src = net.addPopulation("src", 1, unitNeuron());
    PopId dst = net.addPopulation("dst", 90, unitNeuron());
    net.connectAllToAll(src, dst, 0, 2);
    uint32_t in = net.addInput("kick");
    net.bindInput(in, {src, 0}, 0);
    for (uint32_t i = 0; i < 90; ++i)
        net.markOutput({dst, i});

    CompiledModel model = compile(net, smallOptions());
    EXPECT_GE(model.stats.splitterCores, 1u);
    EXPECT_EQ(model.stats.relayNeurons, 3u);  // one per target core

    auto out = runOnChip(net, smallOptions(), {{in, 0}}, 8);
    EXPECT_EQ(out.size(), 90u);
    for (const auto &s : out)
        EXPECT_EQ(s.tick, 2u);  // 1 tick relay + 1 tick remaining
}

TEST(Compiler, FanoutByTypeNeedsSplitterToo)
{
    // Same source, same destination core, two type classes: two
    // axons, hence two branches.
    Network net;
    PopId src = net.addPopulation("src", 1, unitNeuron());
    PopId dst = net.addPopulation("dst", 2, unitNeuron(3));
    net.connect({src, 0}, {dst, 0}, 0, 2);
    net.connect({src, 0}, {dst, 1}, 2, 2);
    CompiledModel model = compile(net, smallOptions());
    EXPECT_EQ(model.stats.relayNeurons, 2u);
}

TEST(CompilerDeath, DelayBudgetViolation)
{
    Network net;
    PopId src = net.addPopulation("src", 1, unitNeuron());
    PopId dst = net.addPopulation("dst", 90, unitNeuron());
    net.connectAllToAll(src, dst, 0, 1);  // delay 1 but needs a tree
    EXPECT_EXIT(compile(net, smallOptions()),
                ::testing::ExitedWithCode(1), "increase the edge");
}

TEST(CompilerDeath, AxonExhaustion)
{
    // 33 distinct sources into a 32-axon core cannot be wired.
    Network net;
    PopId src = net.addPopulation("src", 33, unitNeuron());
    PopId dst = net.addPopulation("dst", 1, unitNeuron());
    net.connectAllToAll(src, dst, 0, 1);
    EXPECT_EXIT(compile(net, smallOptions()),
                ::testing::ExitedWithCode(1), "out of axons");
}

TEST(CompilerDeath, DelayBeyondScheduler)
{
    Network net;
    PopId a = net.addPopulation("a", 2, unitNeuron());
    net.connect({a, 0}, {a, 1}, 0, 16);
    EXPECT_EXIT(compile(net, smallOptions()),
                ::testing::ExitedWithCode(1), "scheduler");
}

TEST(Compiler, StatsPopulated)
{
    Network net;
    PopId a = net.addPopulation("a", 40, unitNeuron());
    net.connectRandom(a, a, 0.1, 0, 3, 5);
    CompileOptions opt = smallOptions();
    opt.geom.numAxons = 128;  // room for 40 distinct sources per core
    CompiledModel model = compile(net, opt);
    EXPECT_GE(model.stats.logicalCores, 2u);
    EXPECT_GT(model.stats.synapses, 0u);
    EXPECT_GT(model.stats.axonsUsed, 0u);
}

// --- placement -----------------------------------------------------------------

TrafficMatrix
pairedTraffic(uint32_t n)
{
    // Heavy traffic between i and i + n/2: row-major places the
    // partners far apart, a traffic-aware order brings them together.
    TrafficMatrix tm(n);
    for (uint32_t i = 0; i < n / 2; ++i)
        tm[i][i + n / 2] = 100;
    return tm;
}

TEST(Placer, CostComputation)
{
    TrafficMatrix tm(2);
    tm[0][1] = 10;
    std::vector<uint32_t> x = {0, 3}, y = {0, 4};
    EXPECT_DOUBLE_EQ(placementCost(tm, x, y), 70.0);
}

TEST(Placer, PoliciesCoverAllCells)
{
    TrafficMatrix tm = pairedTraffic(16);
    for (auto policy : {PlacementPolicy::RowMajor,
                        PlacementPolicy::GreedyBfs,
                        PlacementPolicy::Anneal}) {
        Placement pl = placeCores(tm, policy, 4, 4, 3);
        std::vector<bool> used(16, false);
        for (uint32_t i = 0; i < 16; ++i) {
            uint32_t cell = pl.y[i] * 4 + pl.x[i];
            ASSERT_LT(cell, 16u);
            ASSERT_FALSE(used[cell]) << "cell reused by "
                                     << placementPolicyName(policy);
            used[cell] = true;
        }
    }
}

TEST(Placer, TrafficAwareBeatsRowMajor)
{
    TrafficMatrix tm = pairedTraffic(36);
    Placement naive = placeCores(tm, PlacementPolicy::RowMajor, 6, 6);
    Placement greedy = placeCores(tm, PlacementPolicy::GreedyBfs, 6, 6);
    Placement anneal = placeCores(tm, PlacementPolicy::Anneal, 6, 6, 9);
    EXPECT_LT(greedy.cost, naive.cost);
    EXPECT_LE(anneal.cost, greedy.cost * 1.05);
}

TEST(Placer, AutoGridFits)
{
    TrafficMatrix tm(10);
    Placement pl = placeCores(tm, PlacementPolicy::RowMajor);
    EXPECT_GE(pl.width * pl.height, 10u);
    EXPECT_LE(pl.width, 4u);
}

// --- board targeting ------------------------------------------------------------

TEST(Placer, BoardCostWeighsChipCrossings)
{
    TrafficMatrix tm(2);
    tm[0][1] = 10;
    std::vector<uint32_t> x = {0, 4}, y = {0, 0};
    // Same row, distance 4, one chip crossing at weight 4: 10*(4+4).
    PlacerCostModel model;
    model.chipW = 4;
    model.chipH = 4;
    model.linkWeight = 4.0;
    EXPECT_DOUBLE_EQ(placementCost(tm, x, y, model), 80.0);
    // Without a board the same placement costs plain manhattan.
    EXPECT_DOUBLE_EQ(placementCost(tm, x, y), 40.0);
}

TEST(Placer, BoardAwareAnnealAvoidsLinkTraffic)
{
    // Two 8-core cliques: on a 4x4 grid split into 2x1 chips, a
    // board-aware placement can keep each clique on one chip.
    const uint32_t n = 16;
    TrafficMatrix tm(n);
    for (uint32_t i = 0; i < 8; ++i)
        for (uint32_t j = 0; j < 8; ++j)
            if (i != j) {
                tm[i][j] += 50;
                tm[8 + i][8 + j] += 50;
            }
    tm[0][8] = 1;  // one thin global edge keeps the graph connected
    PlacerCostModel model;
    model.chipW = 2;
    model.chipH = 4;
    model.linkWeight = 8.0;

    auto crossings = [&](const Placement &pl) {
        uint64_t c = 0;
        for (uint32_t i = 0; i < n; ++i)
            for (const auto &kv : tm[i])
                if (pl.x[i] / model.chipW !=
                    pl.x[kv.first] / model.chipW)
                    c += kv.second;
        return c;
    };

    Placement naive = placeCores(tm, PlacementPolicy::RowMajor,
                                 4, 4, 1, model);
    Placement aware = placeCores(tm, PlacementPolicy::Anneal,
                                 4, 4, 9, model);
    EXPECT_LT(aware.cost, naive.cost);
    EXPECT_LT(crossings(aware), crossings(naive));
}

TEST(Compiler, BoardTargetTilesGridAndCountsLinkTraffic)
{
    Network net;
    PopId a = net.addPopulation("a", 80, unitNeuron());
    net.connectRandom(a, a, 0.08, 0, 3, 5);
    CompileOptions opt = smallOptions();
    opt.geom.numAxons = 128;
    opt.boardWidth = 2;
    opt.boardHeight = 1;
    opt.placement = PlacementPolicy::Anneal;
    CompiledModel model = compile(net, opt);
    EXPECT_EQ(model.boardWidth, 2u);
    EXPECT_EQ(model.boardHeight, 1u);
    EXPECT_EQ(model.gridWidth % 2, 0u);
    // Random recurrent connectivity cannot be fully contained on one
    // chip tile once it spans several cores.
    EXPECT_GT(model.stats.interChipDests, 0u);
    EXPECT_LT(model.stats.interChipDests, model.stats.synapses);
}

TEST(Compiler, BoardModelRunsIdenticallyOnChipAndBoard)
{
    // Compile once for a 2x1 board, then deploy the same model on
    // one big chip and on the board: with unconstrained links the
    // output streams must agree (canonical per-tick order; within a
    // tick the two framings emit in different evaluation orders).
    Network net;
    PopId a = net.addPopulation("a", 60, unitNeuron());
    PopId b = net.addPopulation("b", 60, unitNeuron());
    // Delays >= 2 everywhere: fan-out beyond one branch (the
    // one-to-one edge plus random extras) splits through relays.
    net.connectOneToOne(a, b, 0, 2);
    net.connectRandom(a, b, 0.05, 0, 3, 11);
    uint32_t in = net.addInput("in");
    for (uint32_t i = 0; i < 60; ++i) {
        net.bindInput(in, {a, i}, 0);
        net.markOutput({b, i});
    }
    CompileOptions opt = smallOptions();
    opt.geom.numAxons = 128;
    opt.boardWidth = 2;
    opt.boardHeight = 1;
    CompiledModel model = compile(net, opt);

    auto schedule = [&](auto &target) {
        for (uint64_t t = 0; t < 12; ++t) {
            if (t % 3 == 0)
                for (const InputSpike &s : model.inputTargets("in"))
                    target.injectInput(s.core, s.axon, t);
            target.tick();
        }
    };

    ChipParams cp;
    cp.width = model.gridWidth;
    cp.height = model.gridHeight;
    cp.coreGeom = model.geom;
    Chip chip(cp, model.cores);
    schedule(chip);

    BoardParams bp;
    bp.width = model.boardWidth;
    bp.height = model.boardHeight;
    bp.chip.width = model.gridWidth / model.boardWidth;
    bp.chip.height = model.gridHeight / model.boardHeight;
    bp.chip.coreGeom = model.geom;
    Board board(bp, model.cores);
    schedule(board);

    auto canon = [](std::vector<OutputSpike> v) {
        std::sort(v.begin(), v.end(),
                  [](const OutputSpike &p, const OutputSpike &q) {
                      return p.tick != q.tick ? p.tick < q.tick
                                              : p.line < q.line;
                  });
        return v;
    };
    EXPECT_EQ(canon(chip.outputs()), canon(board.outputs()));
    EXPECT_FALSE(chip.outputs().empty());
}

// --- corelets -------------------------------------------------------------------

TEST(Corelets, MergerIsOrGate)
{
    Network net;
    auto m = corelets::merger(net, "or");
    uint32_t in_a = net.addInput("a");
    uint32_t in_b = net.addInput("b");
    net.bindInput(in_a, m.in[0], 0);
    net.bindInput(in_b, m.in[0], 0);
    net.markOutput(m.out[0]);

    // Tick 0: both fire (one output spike); tick 3: only a.
    auto out = runOnChip(net, smallOptions(),
                         {{in_a, 0}, {in_b, 0}, {in_a, 3}}, 6);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].tick, 0u);
    EXPECT_EQ(out[1].tick, 3u);
}

TEST(Corelets, DelayLineShiftsByLength)
{
    Network net;
    auto dl = corelets::delayLine(net, "dl", 5);
    uint32_t in = net.addInput("x");
    net.bindInput(in, dl.in[0], 0);
    net.markOutput(dl.out[0]);

    auto out = runOnChip(net, smallOptions(), {{in, 2}}, 12);
    ASSERT_EQ(out.size(), 1u);
    // Head fires at 2; four more relay hops of delay 1 each.
    EXPECT_EQ(out[0].tick, 6u);
}

TEST(Corelets, MajorityGateCounts)
{
    Network net;
    auto maj = corelets::majority(net, "m3", 3);
    std::vector<uint32_t> ins;
    for (int i = 0; i < 4; ++i) {
        uint32_t in = net.addInput("i" + std::to_string(i));
        net.bindInput(in, maj.in[0], 0);
        ins.push_back(in);
    }
    net.markOutput(maj.out[0]);

    // Tick 0: 2 of 4 (below k=3).  Tick 4: 3 of 4 (fires).
    // Ticks 8 and 9: 2 then 2 — must NOT accumulate across ticks.
    auto out = runOnChip(net, smallOptions(),
                         {{ins[0], 0}, {ins[1], 0},
                          {ins[0], 4}, {ins[1], 4}, {ins[2], 4},
                          {ins[0], 8}, {ins[1], 8},
                          {ins[2], 9}, {ins[3], 9}},
                         14);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].tick, 4u);
}

TEST(Corelets, RateScalerApproximatesProbability)
{
    Network net;
    auto rs = corelets::rateScaler(net, "quarter", 1, 64);
    uint32_t in = net.addInput("drive");
    net.bindInput(in, rs.in[0], 0);
    net.markOutput(rs.out[0]);

    std::vector<std::pair<uint32_t, uint64_t>> fires;
    const uint64_t ticks = 4000;
    for (uint64_t t = 0; t < ticks; ++t)
        fires.push_back({in, t});
    auto out = runOnChip(net, smallOptions(), fires, ticks);
    double rate = static_cast<double>(out.size()) /
        static_cast<double>(ticks);
    EXPECT_NEAR(rate, 0.25, 0.03);
}

TEST(Corelets, WinnerTakeAllSelectsStrongerChannel)
{
    Network net;
    auto wta = corelets::winnerTakeAll(net, "wta", 3, 4);
    std::vector<uint32_t> ins;
    for (uint32_t i = 0; i < 3; ++i) {
        uint32_t in = net.addInput("ch" + std::to_string(i));
        net.bindInput(in, wta.in[i], 0);
        ins.push_back(in);
    }
    for (uint32_t i = 0; i < 3; ++i)
        net.markOutput(wta.out[i]);

    // Channel 1 gets drive every tick, channels 0/2 every 3rd tick:
    // channel 1 must dominate the output counts decisively.
    std::vector<std::pair<uint32_t, uint64_t>> fires;
    for (uint64_t t = 0; t < 60; ++t) {
        fires.push_back({ins[1], t});
        if (t % 3 == 0) {
            fires.push_back({ins[0], t});
            fires.push_back({ins[2], t});
        }
    }
    auto out = runOnChip(net, smallOptions(), fires, 70);
    uint64_t counts[3] = {0, 0, 0};
    for (const auto &s : out)
        ++counts[s.line];
    EXPECT_GT(counts[1], 3 * counts[0]);
    EXPECT_GT(counts[1], 3 * counts[2]);
    EXPECT_GT(counts[1], 5u);
}

TEST(Corelets, WinnerTakeAllSilentWithoutDrive)
{
    Network net;
    auto wta = corelets::winnerTakeAll(net, "wta", 4);
    for (uint32_t i = 0; i < 4; ++i)
        net.markOutput(wta.out[i]);
    auto out = runOnChip(net, smallOptions(), {}, 50);
    EXPECT_TRUE(out.empty());
}

TEST(Corelets, SplitterExplicitFanout)
{
    Network net;
    auto sp = corelets::splitter(net, "sp", 3);
    uint32_t in = net.addInput("x");
    for (int i = 0; i < 3; ++i) {
        net.bindInput(in, sp.in[static_cast<size_t>(i)], 0);
        net.markOutput(sp.out[static_cast<size_t>(i)]);
    }
    auto out = runOnChip(net, smallOptions(), {{in, 1}}, 5);
    EXPECT_EQ(out.size(), 3u);
    for (const auto &s : out)
        EXPECT_EQ(s.tick, 1u);
}

} // anonymous namespace
} // namespace nscs
