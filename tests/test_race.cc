/**
 * @file
 * Race-hunting stress tests, written for the TSan leg of the
 * sanitizer matrix (NSCS_SANITIZE=thread) but valid — and still
 * asserting bit-identity — in every build.
 *
 * The bit-identity suites in test_parallel.cc and test_board.cc
 * cover correctness at modest thread counts; these tests instead
 * maximise scheduling pressure where races hide: worker lanes far in
 * excess of the core count (so the atomic claim cursor contends and
 * stragglers cross job boundaries), rapid pool teardown/rebuild
 * cycles (generation handshake), dense spike traffic (concurrent
 * reads of shared core state during evaluation), and logging from
 * worker context while another thread toggles the quiet flag.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "bench/workload.hh"
#include "chip/chip.hh"
#include "runtime/parallel.hh"
#include "util/logging.hh"

namespace nscs {
namespace {

/** Dense cortical workload: every axon driven hard. */
bench::CorticalWorkload
denseWorkload(uint32_t side, uint64_t seed)
{
    bench::CorticalParams wp;
    wp.gridW = wp.gridH = side;
    wp.density = 48;
    wp.ratePerTick = 0.25;
    wp.seed = seed;
    return bench::makeCortical(wp);
}

std::vector<OutputSpike>
runChip(const bench::CorticalWorkload &w, EngineKind ek,
        uint32_t threads, uint64_t ticks)
{
    auto sim = bench::makeCorticalSim(w, ek, NocModel::Functional,
                                      threads);
    sim->run(ticks);
    return sim->recorder().spikes();
}

TEST(RaceStress, ChipParallelOversubscribed)
{
    // 2x2 cores under 16 lanes: most lanes find the cursor already
    // drained and race straight to the completion handshake, the
    // exact window where a missed release/acquire pairing shows up.
    bench::CorticalWorkload w = denseWorkload(2, 0xACE1);
    for (EngineKind ek : {EngineKind::Clock, EngineKind::Event}) {
        auto serial = runChip(w, ek, 0, 60);
        auto parallel = runChip(w, ek, 16, 60);
        EXPECT_EQ(serial, parallel);
    }
}

TEST(RaceStress, ChipPoolTeardownChurn)
{
    // Build and destroy a threaded chip repeatedly: the pool spins
    // up 8 workers, runs a handful of ticks and joins.  Destruction
    // racing an in-flight straggler is the classic use-after-free.
    bench::CorticalWorkload w = denseWorkload(2, 0xBEEF);
    auto expect = runChip(w, EngineKind::Event, 0, 8);
    for (int round = 0; round < 12; ++round)
        EXPECT_EQ(expect, runChip(w, EngineKind::Event, 8, 8));
}

TEST(RaceStress, BoardNestedPools)
{
    // Board lanes over chip lanes: two pool layers hand work across
    // threads every tick, then the serial merge reads every chip's
    // egress buffers from the coordinating thread.
    bench::CorticalWorkload w = denseWorkload(4, 0xF00D);
    auto serial =
        bench::makeCorticalBoardSim(w, EngineKind::Event, 2, 2);
    serial->run(40);
    auto threaded = bench::makeCorticalBoardSim(
        w, EngineKind::Event, 2, 2, /*board_threads=*/8,
        LinkParams{}, /*chip_threads=*/4);
    threaded->run(40);
    EXPECT_EQ(serial->recorder().spikes(),
              threaded->recorder().spikes());
}

TEST(RaceStress, PoolSharedCounterHammer)
{
    // Raw ThreadPool pressure: tiny index spaces under heavy lane
    // oversubscription, back to back, so job generations turn over
    // as fast as the handshake allows.
    ThreadPool pool(16);
    std::atomic<uint64_t> sum{0};
    for (int round = 0; round < 300; ++round) {
        uint32_t count = 1 + (round % 7);
        pool.parallelFor(count,
                         [&](uint32_t i) { sum.fetch_add(i + 1); });
    }
    uint64_t expect = 0;
    for (int round = 0; round < 300; ++round) {
        uint32_t count = 1 + (round % 7);
        expect += uint64_t(count) * (count + 1) / 2;
    }
    EXPECT_EQ(sum.load(), expect);
}

TEST(RaceStress, LoggingQuietToggleVsWorkers)
{
    // warn()/inform() are documented as callable from worker lanes;
    // the quiet flag is an atomic precisely so a test harness can
    // flip it while workers log.  Keep output quiet for the run but
    // exercise both orders.
    bool was_quiet = true;
    setQuiet(true);
    ThreadPool pool(8);
    std::atomic<int> rounds{0};
    for (int round = 0; round < 50; ++round) {
        pool.parallelFor(32, [&](uint32_t i) {
            if (i == 31)
                setQuiet(true);
            rounds.fetch_add(1);
        });
    }
    EXPECT_EQ(rounds.load(), 50 * 32);
    setQuiet(was_quiet);
}

} // namespace
} // namespace nscs
