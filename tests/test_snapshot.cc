/**
 * @file
 * Snapshot/restore tests.
 *
 * The load-bearing property is restore invisibility: running a
 * simulation straight through must be bit-identical to running part
 * way, snapshotting, restoring the snapshot into a freshly built
 * simulator and running the rest — across {Clock, Event} engines,
 * {serial, parallel} execution and {Chip, Board} targets, including
 * board runs with packets parked in flight on constrained links at
 * the snapshot point.  Thread count is explicitly NOT part of the
 * snapshot contract, so a serial snapshot must restore into a
 * parallel simulator (and vice versa) with the same bit-identical
 * continuation.
 *
 * The rejection paths matter just as much: a snapshot from a
 * different format/version/target/engine/geometry must be refused
 * with a diagnostic, never half-applied.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "bench/workload.hh"
#include "runtime/simulator.hh"
#include "runtime/snapshot.hh"
#include "util/json.hh"

namespace nscs {
namespace {

constexpr uint64_t kTicks = 40;      //!< full run length
constexpr uint64_t kSplit = 17;      //!< snapshot point (off-cycle)

/**
 * The cortical workload with every third neuron re-aimed at an
 * output line (as in test_board.cc) so runs produce a comparable
 * OutputSpike stream.
 */
bench::CorticalWorkload
tappedWorkload(uint32_t grid_w, uint32_t grid_h, uint64_t seed)
{
    bench::CorticalParams wp;
    wp.gridW = grid_w;
    wp.gridH = grid_h;
    wp.density = 32;
    wp.ratePerTick = 0.05;
    wp.seed = seed;
    bench::CorticalWorkload w = bench::makeCortical(wp);
    const uint32_t neurons = CoreGeometry{}.numNeurons;
    for (uint32_t c = 0; c < w.cores.size(); ++c) {
        for (uint32_t n = 0; n < neurons; n += 3) {
            NeuronDest &d = w.cores[c].dests[n];
            d = NeuronDest{};
            d.kind = NeuronDest::Kind::Output;
            d.line = c * neurons + n;
        }
    }
    return w;
}

std::unique_ptr<Simulator>
chipSim(const bench::CorticalWorkload &w, EngineKind engine,
        uint32_t threads)
{
    return bench::makeCorticalSim(w, engine, NocModel::Functional,
                                  threads);
}

/** Board sim with a constrained link so packets park in flight. */
std::unique_ptr<Simulator>
boardSim(const bench::CorticalWorkload &w, EngineKind engine,
         uint32_t threads)
{
    LinkParams link;
    link.packetsPerTick = 6;  // forces budget stalls into pending_
    link.extraDelay = 2;      // keeps packets in transit across ticks
    return bench::makeCorticalBoardSim(w, engine, 2, 2, threads, link);
}

/**
 * Restore invisibility for one (maker, engine, threads) cell:
 * straight-through reference vs snapshot-at-kSplit restored into a
 * fresh simulator, raw vector equality (same framing, so the
 * determinism contract promises bit-identical streams).
 */
template <typename MakeSim>
void
expectRestoreInvisible(const bench::CorticalWorkload &w,
                       MakeSim make, EngineKind engine,
                       uint32_t threads)
{
    auto ref = make(w, engine, threads);
    ref->run(kTicks);

    auto subject = make(w, engine, threads);
    subject->run(kSplit);
    JsonValue snap = subject->snapshot();

    // Snapshotting is non-destructive: the donor continues
    // bit-identically.
    subject->run(kTicks - kSplit);
    EXPECT_EQ(subject->recorder().spikes(), ref->recorder().spikes());

    auto restored = make(w, engine, threads);
    std::string err;
    ASSERT_TRUE(restored->restore(snap, &err)) << err;
    EXPECT_EQ(restored->now(), kSplit);
    restored->run(kTicks - kSplit);
    EXPECT_EQ(restored->recorder().spikes(), ref->recorder().spikes());
}

TEST(SnapshotRoundTrip, ChipMatrix)
{
    bench::CorticalWorkload w = tappedWorkload(4, 4, 7);
    for (EngineKind engine : {EngineKind::Clock, EngineKind::Event}) {
        for (uint32_t threads : {0u, 3u}) {
            SCOPED_TRACE(testing::Message()
                         << "engine=" << static_cast<int>(engine)
                         << " threads=" << threads);
            expectRestoreInvisible(w, chipSim, engine, threads);
        }
    }
}

TEST(SnapshotRoundTrip, BoardMatrixWithInFlightPackets)
{
    bench::CorticalWorkload w = tappedWorkload(4, 4, 11);
    for (EngineKind engine : {EngineKind::Clock, EngineKind::Event}) {
        for (uint32_t threads : {0u, 2u}) {
            SCOPED_TRACE(testing::Message()
                         << "engine=" << static_cast<int>(engine)
                         << " threads=" << threads);
            expectRestoreInvisible(w, boardSim, engine, threads);
        }
    }
}

// Thread count is not part of the snapshot contract: a serial
// snapshot restores into a parallel simulator (and back) with a
// bit-identical continuation.
TEST(SnapshotRoundTrip, CrossThreadCountRestore)
{
    bench::CorticalWorkload w = tappedWorkload(4, 4, 13);
    auto ref = chipSim(w, EngineKind::Event, 0);
    ref->run(kTicks);

    auto donor = chipSim(w, EngineKind::Event, 0);
    donor->run(kSplit);
    JsonValue snap = donor->snapshot();

    auto wide = chipSim(w, EngineKind::Event, 3);
    std::string err;
    ASSERT_TRUE(wide->restore(snap, &err)) << err;
    wide->run(kTicks - kSplit);
    EXPECT_EQ(wide->recorder().spikes(), ref->recorder().spikes());

    // And back: snapshot the parallel sim, restore into serial.
    auto donor2 = chipSim(w, EngineKind::Event, 3);
    donor2->run(kSplit);
    JsonValue snap2 = donor2->snapshot();
    auto narrow = chipSim(w, EngineKind::Event, 0);
    ASSERT_TRUE(narrow->restore(snap2, &err)) << err;
    narrow->run(kTicks - kSplit);
    EXPECT_EQ(narrow->recorder().spikes(), ref->recorder().spikes());
}

TEST(SnapshotRoundTrip, CountersAndRecorderSurvive)
{
    bench::CorticalWorkload w = tappedWorkload(2, 2, 3);
    auto donor = chipSim(w, EngineKind::Clock, 0);
    donor->run(kSplit);
    JsonValue snap = donor->snapshot();

    auto restored = chipSim(w, EngineKind::Clock, 0);
    std::string err;
    ASSERT_TRUE(restored->restore(snap, &err)) << err;
    EXPECT_EQ(restored->recorder().spikes(),
              donor->recorder().spikes());
    EXPECT_EQ(restored->chip().counters().ticks,
              donor->chip().counters().ticks);
    EXPECT_EQ(restored->chip().counters().spikesRouted,
              donor->chip().counters().spikesRouted);
    EXPECT_EQ(restored->chip().counters().spikesOut,
              donor->chip().counters().spikesOut);
    EXPECT_EQ(restored->chip().counters().hops,
              donor->chip().counters().hops);
}

TEST(SnapshotRoundTrip, FileRoundTrip)
{
    bench::CorticalWorkload w = tappedWorkload(2, 2, 5);
    auto ref = chipSim(w, EngineKind::Event, 0);
    ref->run(kTicks);

    auto donor = chipSim(w, EngineKind::Event, 0);
    donor->run(kSplit);
    const std::string path = testing::TempDir() + "nscs_snapshot.json";
    std::string err;
    ASSERT_TRUE(donor->saveStateFile(path, &err)) << err;

    auto restored = chipSim(w, EngineKind::Event, 0);
    ASSERT_TRUE(restored->restoreStateFile(path, &err)) << err;
    restored->run(kTicks - kSplit);
    EXPECT_EQ(restored->recorder().spikes(), ref->recorder().spikes());
}

TEST(SnapshotRejects, MissingFile)
{
    bench::CorticalWorkload w = tappedWorkload(2, 2, 5);
    auto sim = chipSim(w, EngineKind::Event, 0);
    std::string err;
    EXPECT_FALSE(sim->restoreStateFile(
        testing::TempDir() + "no_such_snapshot.json", &err));
    EXPECT_FALSE(err.empty());
}

TEST(SnapshotRejects, VersionMismatch)
{
    bench::CorticalWorkload w = tappedWorkload(2, 2, 5);
    auto sim = chipSim(w, EngineKind::Event, 0);
    sim->run(5);
    JsonValue snap = sim->snapshot();
    snap.set("version", JsonValue::integer(kSnapshotVersion + 1));
    auto fresh = chipSim(w, EngineKind::Event, 0);
    std::string err;
    EXPECT_FALSE(fresh->restore(snap, &err));
    EXPECT_NE(err.find("version"), std::string::npos) << err;
}

TEST(SnapshotRejects, FormatMismatch)
{
    bench::CorticalWorkload w = tappedWorkload(2, 2, 5);
    auto sim = chipSim(w, EngineKind::Event, 0);
    JsonValue snap = sim->snapshot();
    snap.set("format", JsonValue::string("not-a-snapshot"));
    std::string err;
    EXPECT_FALSE(sim->restore(snap, &err));
    EXPECT_NE(err.find("format"), std::string::npos) << err;
}

TEST(SnapshotRejects, TargetMismatch)
{
    bench::CorticalWorkload w = tappedWorkload(4, 4, 5);
    auto chip = chipSim(w, EngineKind::Event, 0);
    chip->run(5);
    JsonValue snap = chip->snapshot();
    auto board = boardSim(w, EngineKind::Event, 0);
    std::string err;
    EXPECT_FALSE(board->restore(snap, &err));
    EXPECT_FALSE(err.empty());
}

TEST(SnapshotRejects, EngineMismatch)
{
    bench::CorticalWorkload w = tappedWorkload(2, 2, 5);
    auto clock = chipSim(w, EngineKind::Clock, 0);
    clock->run(5);
    JsonValue snap = clock->snapshot();
    auto event = chipSim(w, EngineKind::Event, 0);
    std::string err;
    EXPECT_FALSE(event->restore(snap, &err));
    EXPECT_FALSE(err.empty());
}

TEST(SnapshotRejects, GeometryMismatch)
{
    bench::CorticalWorkload big = tappedWorkload(4, 4, 5);
    auto donor = chipSim(big, EngineKind::Event, 0);
    donor->run(5);
    JsonValue snap = donor->snapshot();
    bench::CorticalWorkload small = tappedWorkload(2, 2, 5);
    auto sim = chipSim(small, EngineKind::Event, 0);
    std::string err;
    EXPECT_FALSE(sim->restore(snap, &err));
    EXPECT_FALSE(err.empty());
}

TEST(SnapshotRejects, GarbageDocument)
{
    bench::CorticalWorkload w = tappedWorkload(2, 2, 5);
    auto sim = chipSim(w, EngineKind::Event, 0);
    std::string err;
    EXPECT_FALSE(sim->restore(JsonValue::integer(42), &err));
    EXPECT_FALSE(err.empty());
    err.clear();
    EXPECT_FALSE(sim->restore(JsonValue::object(), &err));
    EXPECT_FALSE(err.empty());
}

} // anonymous namespace
} // namespace nscs
