/**
 * @file
 * Stress and failure-injection tests: saturation corners, scheduler
 * wrap-around semantics, congested cycle-accurate transport, long
 * deterministic runs, reset-mid-run behaviour, and degenerate
 * configurations that must stay well-defined.
 */

#include <gtest/gtest.h>

#include "baseline/reference_sim.hh"
#include "chip/chip.hh"
#include "prog/compiler.hh"
#include "prog/network.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/saturate.hh"

namespace nscs {
namespace {

CoreGeometry
smallGeom()
{
    CoreGeometry g;
    g.numAxons = 16;
    g.numNeurons = 16;
    g.delaySlots = 16;
    return g;
}

CoreConfig
relayCore()
{
    CoreConfig cfg = CoreConfig::make(smallGeom());
    for (uint32_t n = 0; n < 16; ++n) {
        cfg.neurons[n].threshold = 1;
        cfg.connect(n, n);
    }
    return cfg;
}

// --- saturation corners -------------------------------------------------------

TEST(Saturation, MaxThresholdCrossingIsExact)
{
    // Max-weight drive toward the maximum legal threshold: the
    // register never wraps, the fire lands exactly at the predicted
    // crossing tick, and accumulation restarts cleanly.
    CoreConfig cfg = CoreConfig::make(smallGeom());
    cfg.neurons[0].synWeight[0] = 255;
    cfg.neurons[0].threshold = satMax(20);
    cfg.connect(0, 0);
    Core core(cfg);
    std::vector<uint32_t> fired;
    uint64_t fire_tick = 0;
    for (uint64_t t = 0; t < 3000; ++t) {
        core.deposit(t, 0);
        fired.clear();
        core.tickDense(t, fired);
        if (!fired.empty())
            fire_tick = t;
        ASSERT_LE(core.potential(0), satMax(20));
        ASSERT_GE(core.potential(0), satMin(20));
    }
    // ceil(524287 / 255) events needed: fires at tick 2056 (0-based).
    EXPECT_EQ(fire_tick, 2056u);
    EXPECT_EQ(core.potential(0), (3000 - 2057) * 255);
}

TEST(Saturation, WithinTickIntegrationSaturates)
{
    // An 8-bit register: a single +255 event already pins at +127;
    // further events in the same tick change nothing, and the fire
    // then resets normally.
    CoreConfig cfg = CoreConfig::make(smallGeom());
    NeuronParams &p = cfg.neurons[0];
    p.potentialBits = 8;
    p.synWeight[0] = 255;
    p.threshold = 127;
    for (uint32_t a = 0; a < 3; ++a)
        cfg.connect(a, 0);
    Core core(cfg);
    std::vector<uint32_t> fired;
    for (uint64_t t = 0; t < 50; ++t) {
        for (uint32_t a = 0; a < 3; ++a)
            core.deposit(t, a);
        core.tickDense(t, fired);
        ASSERT_LE(core.potential(0), 127);
    }
    EXPECT_EQ(fired.size(), 50u);  // fires every tick, no wrap
}

TEST(Saturation, NegativePinsAtFloor)
{
    CoreConfig cfg = CoreConfig::make(smallGeom());
    cfg.neurons[0].synWeight[0] = -255;
    cfg.neurons[0].threshold = 10;
    cfg.neurons[0].negThreshold = 0;  // no beta floor
    cfg.neurons[0].negSaturate = false;
    cfg.neurons[0].resetMode = ResetMode::None;
    cfg.connect(0, 0);
    Core core(cfg);
    std::vector<uint32_t> fired;
    for (uint64_t t = 0; t < 3000; ++t) {
        core.deposit(t, 0);
        core.tickDense(t, fired);
    }
    EXPECT_EQ(core.potential(0), satMin(20));
    EXPECT_TRUE(fired.empty());
}

// --- scheduler wrap-around ------------------------------------------------------

TEST(SchedulerWrap, MaxDelayDeliversExactlyOnce)
{
    // Delay 15 on a 16-slot scheduler: the spike must arrive at
    // t+15, not t-1 mod 16.
    CoreConfig src = relayCore();
    src.dests[0].kind = NeuronDest::Kind::Core;
    src.dests[0].dx = 0;
    src.dests[0].dy = 0;
    src.dests[0].axon = 1;
    src.dests[0].delay = 15;
    src.dests[1].kind = NeuronDest::Kind::Output;
    src.dests[1].line = 0;

    ChipParams p;
    p.width = 1;
    p.height = 1;
    p.coreGeom = smallGeom();
    Chip chip(p, {src});
    chip.injectInput(0, 0, 0);
    chip.run(40);
    ASSERT_EQ(chip.outputs().size(), 1u);
    EXPECT_EQ(chip.outputs()[0].tick, 15u);
    EXPECT_EQ(chip.counters().lateDeliveries, 0u);
}

TEST(SchedulerWrap, RepeatedWrapsStayAligned)
{
    // A self-loop of delay 13 must tick at exactly 13-tick intervals
    // through many scheduler wraps.
    CoreConfig cfg = relayCore();
    cfg.dests[2].kind = NeuronDest::Kind::Core;
    cfg.dests[2].dx = 0;
    cfg.dests[2].dy = 0;
    cfg.dests[2].axon = 2;
    cfg.dests[2].delay = 13;
    cfg.connect(2, 3);
    cfg.dests[3].kind = NeuronDest::Kind::Output;
    cfg.dests[3].line = 7;

    ChipParams p;
    p.width = 1;
    p.height = 1;
    p.coreGeom = smallGeom();
    Chip chip(p, {cfg});
    chip.injectInput(0, 2, 0);
    chip.run(400);
    const auto &out = chip.outputs();
    ASSERT_GE(out.size(), 30u);
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i].tick, i * 13)
            << "wrap misalignment at spike " << i;
}

// --- congestion and late delivery ------------------------------------------------

TEST(Congestion, HotspotStaysDeterministicAndLossless)
{
    // Every core fires into core 0's axons every tick through the
    // cycle-accurate mesh: heavy contention at the hotspot.  All
    // spikes must be delivered (possibly late), and two identical
    // runs must agree exactly.
    const uint32_t side = 4;
    std::vector<CoreConfig> cfgs;
    for (uint32_t c = 0; c < side * side; ++c) {
        CoreConfig cfg = relayCore();
        uint32_t x = c % side, y = c / side;
        for (uint32_t n = 0; n < 8; ++n) {
            cfg.dests[n].kind = NeuronDest::Kind::Core;
            cfg.dests[n].dx = -static_cast<int16_t>(x);
            cfg.dests[n].dy = -static_cast<int16_t>(y);
            cfg.dests[n].axon = static_cast<uint16_t>(8 + (n % 8));
            cfg.dests[n].delay = 2;
        }
        if (c == 0)
            for (uint32_t n = 8; n < 16; ++n) {
                cfg.dests[n].kind = NeuronDest::Kind::Output;
                cfg.dests[n].line = n;
            }
        cfgs.push_back(std::move(cfg));
    }

    auto run = [&](uint32_t budget) {
        ChipParams p;
        p.width = side;
        p.height = side;
        p.coreGeom = smallGeom();
        p.noc = NocModel::Cycle;
        p.cyclesPerTick = budget;
        Chip chip(p, cfgs);
        for (uint64_t t = 0; t < 60; ++t) {
            for (uint32_t c = 0; c < side * side; ++c)
                for (uint32_t a = 0; a < 8; ++a)
                    chip.injectInput(c, a, t);
            chip.tick();
        }
        chip.run(64);  // drain
        return chip;
    };

    // Tight budget forces lateness but not loss.
    {
        Chip chip = run(4);
        EXPECT_GT(chip.counters().lateDeliveries, 0u);
        EXPECT_GT(chip.counters().spikesOut, 0u);
    }
    // Determinism under congestion: identical reruns.
    {
        Chip a = run(8);
        Chip b = run(8);
        EXPECT_EQ(a.outputs(), b.outputs());
        EXPECT_EQ(a.counters().lateDeliveries,
                  b.counters().lateDeliveries);
    }
    // A generous budget delivers everything on time.
    {
        Chip chip = run(4096);
        EXPECT_EQ(chip.counters().lateDeliveries, 0u);
    }
}

// --- long-run determinism ---------------------------------------------------------

TEST(LongRun, TenThousandTicksBitStable)
{
    Network net;
    NeuronParams p;
    p.synWeight = {2, -1, 1, 1};
    p.threshold = 5;
    p.leak = -1;
    p.negSaturate = true;
    p.leakStochastic = true;  // exercises per-tick PRNG for 10k ticks
    PopId a = net.addPopulation("a", 20, p);
    net.connectRandom(a, a, 0.08, 0, 3, 5);
    uint32_t in = net.addInput("drive");
    for (uint32_t i = 0; i < 6; ++i)
        net.bindInput(in, {a, i}, 0);
    for (uint32_t i = 12; i < 20; ++i)
        net.markOutput({a, i});

    CompileOptions opt;
    opt.geom.numAxons = 64;
    opt.geom.numNeurons = 32;
    CompiledModel model = compile(net, opt);
    const auto &targets = model.inputTargets("drive");

    auto run = [&](EngineKind ek) {
        ChipParams cp;
        cp.width = model.gridWidth;
        cp.height = model.gridHeight;
        cp.coreGeom = model.geom;
        cp.engine = ek;
        Chip chip(cp, model.cores);
        Xoshiro256 rng(77);
        for (uint64_t t = 0; t < 10000; ++t) {
            if (rng.chance(0.3))
                for (const InputSpike &s : targets)
                    chip.injectInput(s.core, s.axon, t);
            chip.tick();
        }
        return chip.outputs();
    };
    auto clock = run(EngineKind::Clock);
    auto event = run(EngineKind::Event);
    ASSERT_GT(clock.size(), 100u);
    EXPECT_EQ(clock, event);
}

// --- reset mid-run -----------------------------------------------------------------

TEST(Reset, MidRunResetReproducesFromScratch)
{
    CoreConfig cfg = relayCore();
    cfg.neurons[5].leak = 1;
    cfg.neurons[5].threshold = 9;
    cfg.dests[5].kind = NeuronDest::Kind::Output;
    cfg.dests[5].line = 0;

    ChipParams p;
    p.width = 1;
    p.height = 1;
    p.coreGeom = smallGeom();
    Chip chip(p, {cfg});
    chip.run(57);
    auto first = chip.outputs();
    ASSERT_FALSE(first.empty());

    chip.reset();
    chip.run(57);
    EXPECT_EQ(chip.outputs(), first);
}

// --- degenerate configurations ------------------------------------------------------

TEST(Degenerate, UnconnectedChipIsSilentAndCheap)
{
    std::vector<CoreConfig> cfgs(9, CoreConfig::make(smallGeom()));
    ChipParams p;
    p.width = 3;
    p.height = 3;
    p.coreGeom = smallGeom();
    p.engine = EngineKind::Event;
    Chip chip(p, std::move(cfgs));
    chip.run(1000);
    EXPECT_TRUE(chip.outputs().empty());
    // The event engine never activates a single core.
    EXPECT_EQ(chip.counters().coreActivations, 0u);
}

TEST(Degenerate, CollisionMergeSemantics)
{
    // Two sources hitting the same (axon, tick) merge into one
    // event: the target integrates once, and the collision is
    // counted.
    CoreConfig cfg = relayCore();
    cfg.neurons[4].threshold = 2;  // needs two separate events
    ChipParams p;
    p.width = 1;
    p.height = 1;
    p.coreGeom = smallGeom();
    Chip chip(p, {cfg});
    chip.injectInput(0, 4, 0);
    chip.injectInput(0, 4, 0);  // merged with the first
    chip.run(3);
    EXPECT_TRUE(chip.outputs().empty());
    EXPECT_EQ(chip.core(0).counters().collisions, 1u);
    EXPECT_EQ(chip.core(0).counters().sops, 1u);
}

TEST(Degenerate, ReferenceAgreesOnPathologicalParams)
{
    // Extreme parameter corners (saturated weights, max mask, both
    // negative modes) still agree chip-vs-reference.
    CoreGeometry geom;
    geom.numAxons = 8;
    geom.numNeurons = 8;
    geom.delaySlots = 16;
    CoreConfig cfg = CoreConfig::make(geom);
    for (uint32_t n = 0; n < 8; ++n) {
        NeuronParams &np = cfg.neurons[n];
        np.synWeight = {255, -255, 255, -255};
        np.synStochastic = {true, false, true, false};
        np.threshold = 1 + static_cast<int32_t>(n);
        np.negThreshold = 255;
        np.negSaturate = (n % 2) == 0;
        np.resetMode = static_cast<ResetMode>(n % 3);
        np.thresholdMaskBits = static_cast<uint8_t>(n % 5);
        np.leak = static_cast<int16_t>((n % 2) ? -255 : 255);
        np.leakStochastic = (n % 3) == 0;
        cfg.connect(n % 8, n);
        cfg.dests[n].kind = NeuronDest::Kind::Output;
        cfg.dests[n].line = n;
    }
    validateCoreConfig(cfg, "pathological");

    CompiledModel model;
    model.gridWidth = model.gridHeight = 1;
    model.geom = geom;
    model.cores = {cfg};

    ReferenceSim ref(model);
    ChipParams p;
    p.width = 1;
    p.height = 1;
    p.coreGeom = geom;
    p.engine = EngineKind::Event;
    Chip chip(p, {cfg});
    Xoshiro256 rng(9);
    for (uint64_t t = 0; t < 500; ++t) {
        for (uint32_t a = 0; a < 8; ++a) {
            if (rng.chance(0.3)) {
                ref.injectInput(0, a, t);
                chip.injectInput(0, a, t);
            }
        }
        ref.tick();
        chip.tick();
    }
    EXPECT_EQ(chip.outputs(), ref.outputs());
    EXPECT_FALSE(ref.outputs().empty());
}

} // anonymous namespace
} // namespace nscs
