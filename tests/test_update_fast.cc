/**
 * @file
 * Differential suite for the batched (word-parallel) end-of-tick
 * update path and the self-event heap compaction.
 *
 * Every differential test drives two cores (or chips) built from the
 * same configuration — the batched SoA update kernel enabled on one
 * side and the scalar endOfTickUpdate reference on the other — over
 * identical spike streams, asserting bit-identical fired sets (in
 * ascending order), membrane potentials, and PRNG draw counts.
 *
 * The fuzz generator is biased toward the update phase: every
 * ResetMode, both negative-threshold modes, leak reversal, stochastic
 * leak and threshold masks, so all UpdateClass values and both update
 * cohorts (deterministic / stochastic) appear, through both the dense
 * and sparse evaluation strategies.  A long sparse run asserts that
 * lazy compaction keeps the self-event heap bounded.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "chip/chip.hh"
#include "core/core.hh"
#include "neuron/batch.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/simd.hh"

namespace nscs {
namespace {

/** Multi-word geometry with a partial tail word. */
CoreGeometry
fuzzGeom()
{
    CoreGeometry g;
    g.numAxons = 96;
    g.numNeurons = 80;
    g.delaySlots = 16;
    return g;
}

/**
 * Random configuration biased toward update-phase features: leak of
 * every sign with reversal and stochastic variants, every ResetMode,
 * both negative-threshold modes, threshold masks, and reset
 * potentials that exercise the negative-rule rebound.
 */
CoreConfig
updateFuzzConfig(uint64_t seed, double stoch_rate = 0.25)
{
    Xoshiro256 rng(seed);
    CoreGeometry g = fuzzGeom();
    CoreConfig cfg = CoreConfig::make(g);
    cfg.rngSeed = static_cast<uint16_t>(rng.below(65536));

    for (uint32_t a = 0; a < g.numAxons; ++a) {
        cfg.axonType[a] = static_cast<uint8_t>(rng.below(4));
        for (uint32_t n = 0; n < g.numNeurons; ++n)
            if (rng.chance(0.2))
                cfg.connect(a, n);
    }
    for (uint32_t n = 0; n < g.numNeurons; ++n) {
        NeuronParams &p = cfg.neurons[n];
        p.potentialBits = static_cast<uint8_t>(rng.range(8, 14));
        for (unsigned w = 0; w < kNumAxonTypes; ++w) {
            p.synWeight[w] = static_cast<int16_t>(rng.range(-30, 30));
            p.synStochastic[w] = rng.chance(0.1);
        }
        p.leak = static_cast<int16_t>(rng.range(-9, 9));
        p.leakReversal = rng.chance(0.2);
        p.leakStochastic = rng.chance(stoch_rate * 0.5);
        p.threshold = static_cast<int32_t>(rng.range(2, 40));
        p.negThreshold = static_cast<int32_t>(rng.below(80));
        p.negSaturate = rng.chance(0.5);
        p.thresholdMaskBits = rng.chance(stoch_rate * 0.5)
            ? static_cast<uint8_t>(rng.below(4)) : 0;
        p.resetMode = static_cast<ResetMode>(rng.below(3));
        p.resetPotential = static_cast<int32_t>(rng.range(-50, 10));
        p.initialPotential = static_cast<int32_t>(rng.range(-80, 80));
    }
    validateCoreConfig(cfg, "updateFuzzConfig");
    return cfg;
}

std::map<uint64_t, std::vector<std::pair<uint64_t, uint32_t>>>
fuzzInputs(uint64_t seed, const CoreGeometry &g, uint64_t ticks,
           double rate)
{
    Xoshiro256 rng(seed ^ 0xD15EA5Eull);
    std::map<uint64_t, std::vector<std::pair<uint64_t, uint32_t>>> in;
    for (uint64_t t = 0; t < ticks; ++t)
        for (uint32_t a = 0; a < g.numAxons; ++a)
            if (rng.chance(rate)) {
                uint64_t delivery =
                    t + (rng.chance(0.2) ? rng.below(4) : 0);
                if (delivery < ticks)
                    in[t].emplace_back(delivery, a);
            }
    return in;
}

/** Drive a sparse core per its contract (mirrors test_core.cc). */
void
sparseContractTick(Core &core, uint64_t t, std::vector<uint32_t> &fired)
{
    bool must = core.hasDenseNeurons() || !core.slotEmpty(t);
    auto se = core.nextSelfEvent();
    if (se && *se <= t)
        must = true;
    if (must)
        core.tickSparse(t, fired);
}

enum class Drive { Dense, Sparse };

/**
 * Run @p fast (batched update) and @p scalar (reference) in lockstep
 * and assert identical observable state each tick, including the
 * ascending order of the fired vector.
 */
void
runDifferential(Core &fast, Core &scalar, Drive drive, uint64_t seed,
                uint64_t ticks, double rate)
{
    const CoreGeometry &g = fast.config().geom;
    auto inputs = fuzzInputs(seed, g, ticks, rate);

    std::vector<uint32_t> fired_f, fired_s;
    for (uint64_t t = 0; t < ticks; ++t) {
        auto it = inputs.find(t);
        if (it != inputs.end()) {
            for (auto [delivery, a] : it->second) {
                fast.deposit(delivery, a);
                scalar.deposit(delivery, a);
            }
        }
        fired_f.clear();
        fired_s.clear();
        if (drive == Drive::Dense) {
            fast.tickDense(t, fired_f);
            scalar.tickDense(t, fired_s);
        } else {
            sparseContractTick(fast, t, fired_f);
            sparseContractTick(scalar, t, fired_s);
        }
        ASSERT_TRUE(std::is_sorted(fired_f.begin(), fired_f.end()))
            << "fired order at tick " << t << " seed " << seed;
        ASSERT_EQ(fired_f, fired_s) << "tick " << t << " seed " << seed;
        ASSERT_EQ(fast.counters().rngDraws, scalar.counters().rngDraws)
            << "draw-order divergence at tick " << t << " seed " << seed;
        for (uint32_t n = 0; n < g.numNeurons; ++n)
            ASSERT_EQ(fast.settledPotential(n, t + 1),
                      scalar.settledPotential(n, t + 1))
                << "neuron " << n << " tick " << t << " seed " << seed;
    }
    EXPECT_EQ(fast.counters().evals, scalar.counters().evals);
    EXPECT_EQ(fast.counters().spikes, scalar.counters().spikes);
    EXPECT_EQ(fast.counters().sops, scalar.counters().sops);
    // The scalar reference never batches updates.
    EXPECT_EQ(scalar.counters().evalsBatched, 0u);
    EXPECT_LE(fast.counters().evalsBatched, fast.counters().evals);
}

class UpdateFastFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(UpdateFastFuzz, DenseStrategyMatchesScalar)
{
    setQuiet(true);
    uint64_t seed = static_cast<uint64_t>(GetParam()) * 2246822519 + 11;
    CoreConfig cfg = updateFuzzConfig(seed);
    Core fast(cfg);
    Core scalar(cfg);
    scalar.setWordParallelUpdate(false);
    runDifferential(fast, scalar, Drive::Dense, seed, 200, 0.06);
    EXPECT_GT(fast.counters().evalsBatched, 0u);
    setQuiet(false);
}

TEST_P(UpdateFastFuzz, SparseStrategyMatchesScalar)
{
    setQuiet(true);
    uint64_t seed = static_cast<uint64_t>(GetParam()) * 2654435761 + 13;
    CoreConfig cfg = updateFuzzConfig(seed);
    Core fast(cfg);
    Core scalar(cfg);
    scalar.setWordParallelUpdate(false);
    runDifferential(fast, scalar, Drive::Sparse, seed, 200, 0.04);
    setQuiet(false);
}

TEST_P(UpdateFastFuzz, FullyScalarVsFullyBatched)
{
    // Both toggles differ on the two sides: word-parallel integrate +
    // batched update vs all-scalar everything.
    setQuiet(true);
    uint64_t seed = static_cast<uint64_t>(GetParam()) * 15485863 + 17;
    CoreConfig cfg = updateFuzzConfig(seed);
    Core fast(cfg);
    Core scalar(cfg);
    fast.setWordParallelMinActive(0);
    scalar.setWordParallel(false);
    scalar.setWordParallelUpdate(false);
    runDifferential(fast, scalar, Drive::Dense, seed, 150, 0.1);
    setQuiet(false);
}

INSTANTIATE_TEST_SUITE_P(Sweep, UpdateFastFuzz,
                         ::testing::Range(0, 20));

// --- targeted cases ----------------------------------------------------------

/**
 * Every (ResetMode, negSaturate, leakReversal, leak sign) combination
 * through a two-tick trajectory that crosses both thresholds: kernel
 * and scalar must agree exactly.
 */
TEST(UpdateFast, AllResetCombinationsMatchScalar)
{
    for (int mode = 0; mode < 3; ++mode)
        for (bool sat : {false, true})
            for (bool rev : {false, true})
                for (int leak : {-3, 0, 2}) {
                    NeuronParams p;
                    p.potentialBits = 8;
                    p.resetMode = static_cast<ResetMode>(mode);
                    p.negSaturate = sat;
                    p.leakReversal = rev;
                    p.leak = static_cast<int16_t>(leak);
                    p.threshold = 5;
                    p.negThreshold = 6;
                    p.resetPotential = -10;
                    validateNeuronParams(p, "combo");
                    ASSERT_FALSE(drawsPerTick(p));

                    UpdateLanes lanes;
                    lanes.build({p});
                    ASSERT_TRUE(lanes.deterministic.test(0));
                    for (int32_t v0 = -128; v0 <= 127; ++v0) {
                        int32_t vs = v0;
                        bool fs =
                            endOfTickUpdate(vs, p, nullptr);
                        int32_t vb = v0;
                        BitVec fired(1);
                        batchUpdateRange(lanes, &vb, 0, 1, fired);
                        ASSERT_EQ(vb, vs)
                            << "mode=" << mode << " sat=" << sat
                            << " rev=" << rev << " leak=" << leak
                            << " v0=" << v0;
                        ASSERT_EQ(fired.test(0), fs);
                    }
                }
}

TEST(UpdateFast, CohortSplitMatchesDrawsPerTick)
{
    CoreConfig cfg = updateFuzzConfig(99);
    UpdateLanes lanes;
    lanes.build(cfg.neurons);
    size_t det = 0;
    for (uint32_t n = 0; n < cfg.geom.numNeurons; ++n) {
        EXPECT_EQ(lanes.deterministic.test(n),
                  !drawsPerTick(cfg.neurons[n]));
        det += lanes.deterministic.test(n);
    }
    // The generator must produce both cohorts or the differential
    // sweeps above lose coverage.
    EXPECT_GT(det, 0u);
    EXPECT_LT(det, static_cast<size_t>(cfg.geom.numNeurons));
}

TEST(UpdateFast, ToggleMidRunStaysConsistent)
{
    uint64_t seed = 4242;
    CoreConfig cfg = updateFuzzConfig(seed);
    Core mixed(cfg);
    Core scalar(cfg);
    scalar.setWordParallel(false);
    scalar.setWordParallelUpdate(false);
    auto inputs = fuzzInputs(seed, cfg.geom, 120, 0.08);
    std::vector<uint32_t> fired_m, fired_s;
    for (uint64_t t = 0; t < 120; ++t) {
        mixed.setWordParallelUpdate(t % 2 == 0);
        auto it = inputs.find(t);
        if (it != inputs.end()) {
            for (auto [delivery, a] : it->second) {
                mixed.deposit(delivery, a);
                scalar.deposit(delivery, a);
            }
        }
        fired_m.clear();
        fired_s.clear();
        mixed.tickDense(t, fired_m);
        scalar.tickDense(t, fired_s);
        ASSERT_EQ(fired_m, fired_s) << "tick " << t;
    }
    EXPECT_EQ(mixed.counters().spikes, scalar.counters().spikes);
    EXPECT_EQ(mixed.counters().rngDraws, scalar.counters().rngDraws);
}

// --- stochastic cohort via precomputed draws -------------------------------

/**
 * The precomputed-draw batched update of the stochastic cohort must
 * be invisible next to the scalar reference: identical fires,
 * potentials, and — the load-bearing property — identical LFSR draw
 * positions (drawing leak-then-mask per neuron up front is the same
 * stream the scalar path consumes inline).
 */
TEST(UpdateFast, StochasticBatchMatchesScalarCohort)
{
    setQuiet(true);
    for (uint64_t seed : {3ull, 77ull}) {
        // All-stochastic bias so the cohort dominates the core.
        CoreConfig cfg = updateFuzzConfig(seed, 2.0);
        Core fast(cfg);
        Core scalar(cfg);
        scalar.setWordParallelUpdate(false);
        runDifferential(fast, scalar, Drive::Dense, seed, 200, 0.06);
        EXPECT_GT(fast.counters().evalsStochBatched, 0u);
        EXPECT_EQ(scalar.counters().evalsStochBatched, 0u);
    }
    setQuiet(false);
}

TEST(UpdateFast, StochasticBatchMatchesScalarCohortSparse)
{
    setQuiet(true);
    for (uint64_t seed : {5ull, 91ull}) {
        CoreConfig cfg = updateFuzzConfig(seed, 2.0);
        Core fast(cfg);
        Core scalar(cfg);
        scalar.setWordParallelUpdate(false);
        runDifferential(fast, scalar, Drive::Sparse, seed, 200, 0.04);
        EXPECT_GT(fast.counters().evalsStochBatched, 0u);
    }
    setQuiet(false);
}

TEST(UpdateFast, PrecomputedDrawsReproduceEta)
{
    // A single stochastic-threshold Linear-reset neuron: the kernel
    // must subtract the *drawn* threshold + eta on fire, matching
    // thresholdFireReset draw for draw from the same seed.
    NeuronParams p;
    p.potentialBits = 16;
    p.threshold = 10;
    p.thresholdMaskBits = 3;
    p.resetMode = ResetMode::Linear;
    validateNeuronParams(p, "eta");
    ASSERT_TRUE(drawsPerTick(p));

    UpdateLanes lanes;
    lanes.build({p});
    Lfsr16 rng_a(0xBEEF), rng_b(0xBEEF);
    StochDraws draws;
    std::vector<uint32_t> list = {0};
    for (int t = 0; t < 64; ++t) {
        int32_t va = 25, vb = 25;
        precomputeStochDraws(lanes, list, rng_a, draws);
        bool fa = batchUpdateStochOne(lanes, draws, &va, 0);
        bool fb = endOfTickUpdate(vb, p, &rng_b);
        ASSERT_EQ(fa, fb) << "round " << t;
        ASSERT_EQ(va, vb) << "round " << t;
        ASSERT_EQ(rng_a.draws(), rng_b.draws()) << "round " << t;
    }
}

// --- uniform (homogeneous core) fast path ----------------------------------

TEST(UpdateFast, UniformLaneDetection)
{
    NeuronParams p;
    p.leak = -2;
    p.threshold = 17;
    p.negThreshold = 5;
    p.resetMode = ResetMode::Linear;
    std::vector<NeuronParams> homog(96, p);
    UpdateLanes lanes;
    lanes.build(homog);
    EXPECT_TRUE(lanes.uniform);

    // Any update-relevant divergence must defeat the fast path...
    std::vector<NeuronParams> hetero = homog;
    hetero[40].threshold = 18;
    lanes.build(hetero);
    EXPECT_FALSE(lanes.uniform);

    // ...but update-irrelevant fields (synaptic weights) must not:
    // lane-value equality, not NeuronParams equality, is the test.
    std::vector<NeuronParams> syn_only = homog;
    syn_only[7].synWeight[2] = 9;
    lanes.build(syn_only);
    EXPECT_TRUE(lanes.uniform);
}

TEST(UpdateFast, UniformKernelMatchesScalar)
{
    // A homogeneous core with a nontrivial parameter set (reversal
    // leak + Linear reset + negative threshold) through both drive
    // strategies: the hoisted-constant kernel must be value-for-value
    // identical to the scalar reference.
    setQuiet(true);
    CoreGeometry g = fuzzGeom();
    CoreConfig cfg = CoreConfig::make(g);
    Xoshiro256 rng(1234);
    for (uint32_t a = 0; a < g.numAxons; ++a) {
        cfg.axonType[a] = static_cast<uint8_t>(rng.below(4));
        for (uint32_t n = 0; n < g.numNeurons; ++n)
            if (rng.chance(0.25))
                cfg.connect(a, n);
    }
    NeuronParams p;
    p.potentialBits = 12;
    p.synWeight = {3, -2, 5, 1};
    p.leak = -1;
    p.leakReversal = true;
    p.threshold = 9;
    p.negThreshold = 11;
    p.negSaturate = false;
    p.resetMode = ResetMode::Linear;
    for (uint32_t n = 0; n < g.numNeurons; ++n)
        cfg.neurons[n] = p;
    validateCoreConfig(cfg, "uniform");

    {
        Core fast(cfg);
        Core scalar(cfg);
        scalar.setWordParallelUpdate(false);
        runDifferential(fast, scalar, Drive::Dense, 7, 150, 0.1);
        EXPECT_GT(fast.counters().evalsBatched, 0u);
    }
    {
        Core fast(cfg);
        Core scalar(cfg);
        scalar.setWordParallelUpdate(false);
        runDifferential(fast, scalar, Drive::Sparse, 8, 150, 0.06);
    }
    setQuiet(false);
}

// --- self-event heap ---------------------------------------------------------

/**
 * A population of LazyLeak neurons whose spontaneous-fire predictions
 * move *earlier* with every input spike (+200 toward a distant
 * threshold): each re-prediction leaves a stale pair dated later
 * than every live prediction, so the stale mass hides deep in the
 * heap where the top-popping in nextSelfEvent can never reach it.
 * Without compaction the heap grows linearly with ticks; with it, it
 * stays bounded by ~2x the live prediction count plus the rebuild
 * floor.
 */
TEST(UpdateFast, SelfEventHeapStaysBoundedInLongSparseRuns)
{
    CoreGeometry g;
    g.numAxons = 16;
    g.numNeurons = 64;
    g.delaySlots = 16;
    CoreConfig cfg = CoreConfig::make(g);
    for (uint32_t n = 0; n < g.numNeurons; ++n) {
        NeuronParams &p = cfg.neurons[n];
        p.potentialBits = 20;
        p.leak = 1;                   // rising: always predicts a fire
        p.threshold = 500000;         // ...far in the future
        p.synWeight = {200, 200, 200, 200};
        cfg.connect(n % g.numAxons, n);
    }

    Core core(cfg);
    Core scalar(cfg);
    scalar.setWordParallelUpdate(false);
    const uint64_t ticks = 20000;
    std::vector<uint32_t> fired_f, fired_s;
    size_t max_depth = 0;
    for (uint64_t t = 0; t < ticks; ++t) {
        if (t % 3 == 0) {
            // Ratchet potentials upward: every touched neuron
            // re-predicts ~200 ticks earlier, staling its previous
            // (later-dated) heap pair.
            for (uint32_t a = 0; a < g.numAxons; ++a) {
                core.deposit(t, a);
                scalar.deposit(t, a);
            }
        }
        fired_f.clear();
        fired_s.clear();
        sparseContractTick(core, t, fired_f);
        sparseContractTick(scalar, t, fired_s);
        ASSERT_EQ(fired_f, fired_s) << "tick " << t;
        max_depth = std::max(max_depth, core.selfEventQueueDepth());
    }
    // Bound: live predictions (<= numNeurons) plus stale pairs, which
    // compaction caps at half the heap, plus the 64-entry floor.
    EXPECT_LE(max_depth, 3u * g.numNeurons + 64u);
    EXPECT_GT(core.counters().selfEventCompactions, 0u);
    // Compaction is invisible to the scalar side too.
    EXPECT_GT(scalar.counters().selfEventCompactions, 0u);
}

TEST(UpdateFast, FootprintAccountsForSelfEventHeap)
{
    CoreGeometry g;
    g.numAxons = 8;
    g.numNeurons = 128;
    g.delaySlots = 16;

    // A: every neuron holds a live self-event prediction.
    CoreConfig with = CoreConfig::make(g);
    for (uint32_t n = 0; n < g.numNeurons; ++n) {
        with.neurons[n].leak = 1;
        with.neurons[n].threshold = 1000;
    }
    // B: identical shape, but Pure neurons predict nothing.
    CoreConfig without = CoreConfig::make(g);
    for (uint32_t n = 0; n < g.numNeurons; ++n)
        without.neurons[n].threshold = 1000;

    Core a(with);
    Core b(without);
    ASSERT_EQ(a.selfEventQueueDepth(), g.numNeurons);
    ASSERT_EQ(b.selfEventQueueDepth(), 0u);
    EXPECT_GE(a.footprintBytes(),
              b.footprintBytes() +
                  g.numNeurons *
                      sizeof(std::pair<uint64_t, uint32_t>));
}

// --- chip-level engine equivalence ------------------------------------------

/** Spike traces across {Clock, Event} x {serial, parallel} engines x
 *  {scalar, batched} update paths must be bit-identical. */
TEST(UpdateFast, EnginesAgreeAcrossUpdatePaths)
{
    setQuiet(true);
    CoreGeometry g;
    g.numAxons = 32;
    g.numNeurons = 32;
    g.delaySlots = 16;

    // A 2x2 chip of mutually recurrent cores with mixed update
    // cohorts.
    Xoshiro256 rng(7);
    std::vector<CoreConfig> cfgs;
    for (uint32_t c = 0; c < 4; ++c) {
        CoreConfig cfg = CoreConfig::make(g);
        cfg.rngSeed = static_cast<uint16_t>(0xACE1 + c);
        for (uint32_t a = 0; a < g.numAxons; ++a) {
            cfg.axonType[a] = static_cast<uint8_t>(rng.below(4));
            for (uint32_t n = 0; n < g.numNeurons; ++n)
                if (rng.chance(0.3))
                    cfg.connect(a, n);
        }
        for (uint32_t n = 0; n < g.numNeurons; ++n) {
            NeuronParams &p = cfg.neurons[n];
            p.synWeight = {3, -2, 2, 1};
            p.leak = static_cast<int16_t>(rng.range(-2, 2));
            p.leakStochastic = rng.chance(0.2);
            p.threshold = static_cast<int32_t>(rng.range(4, 12));
            p.negThreshold = 30;
            NeuronDest &d = cfg.dests[n];
            if (n % 5 == 0) {
                d.kind = NeuronDest::Kind::Output;
                d.line = n;
            } else {
                d.kind = NeuronDest::Kind::Core;
                d.dx = static_cast<int16_t>((c % 2 == 0) ? 1 : -1);
                d.dy = 0;
                d.axon = static_cast<uint16_t>(n % g.numAxons);
                d.delay = static_cast<uint8_t>(1 + n % 4);
            }
        }
        cfgs.push_back(cfg);
    }

    auto run = [&](EngineKind ek, uint32_t threads, bool batched) {
        ChipParams p;
        p.width = 2;
        p.height = 2;
        p.coreGeom = g;
        p.engine = ek;
        p.threads = threads;
        Chip chip(p, cfgs);
        for (uint32_t c = 0; c < 4; ++c)
            chip.core(c).setWordParallelUpdate(batched);
        for (uint32_t a = 0; a < g.numAxons; a += 3)
            chip.injectInput(a % 4, a, a % 8);
        chip.run(120);
        return chip.outputs();
    };

    auto reference = run(EngineKind::Clock, 0, false);
    ASSERT_FALSE(reference.empty());
    for (EngineKind ek : {EngineKind::Clock, EngineKind::Event})
        for (uint32_t threads : {0u, 3u})
            for (bool batched : {false, true})
                EXPECT_EQ(run(ek, threads, batched), reference)
                    << "engine=" << static_cast<int>(ek)
                    << " threads=" << threads
                    << " batched=" << batched;
    setQuiet(false);
}

// --- SIMD dispatch-level differential ---------------------------------------

/** Restore the process-wide SIMD level on scope exit. */
struct LevelGuard
{
    simd::Level saved = simd::activeLevel();
    ~LevelGuard() { simd::setActiveLevel(saved); }
};

/**
 * The batched update kernel routes its deterministic strips through
 * simd::updateStrip; every dispatch level available on the host must
 * reproduce the scalar-dispatch run bit for bit — fired streams,
 * settled potentials and LFSR draw counts.
 */
TEST(UpdateFast, DispatchLevelSweepBitIdentical)
{
    setQuiet(true);
    LevelGuard guard;
    const uint64_t seed = 90210;
    const uint64_t ticks = 150;
    CoreConfig cfg = updateFuzzConfig(seed);
    auto inputs = fuzzInputs(seed, cfg.geom, ticks, 0.08);

    auto run = [&](simd::Level lvl, std::vector<std::vector<uint32_t>> &out,
                   uint64_t &draws, std::vector<int32_t> &pots) {
        ASSERT_TRUE(simd::setActiveLevel(lvl));
        Core core(cfg);
        core.setWordParallelMinActive(0);
        std::vector<uint32_t> fired;
        for (uint64_t t = 0; t < ticks; ++t) {
            auto it = inputs.find(t);
            if (it != inputs.end())
                for (auto [delivery, a] : it->second)
                    core.deposit(delivery, a);
            fired.clear();
            core.tickDense(t, fired);
            out.push_back(fired);
        }
        EXPECT_GT(core.counters().evalsBatched, 0u);
        draws = core.counters().rngDraws;
        for (uint32_t n = 0; n < cfg.geom.numNeurons; ++n)
            pots.push_back(core.potential(n));
    };

    std::vector<std::vector<uint32_t>> ref_stream;
    uint64_t ref_draws = 0;
    std::vector<int32_t> ref_pots;
    run(simd::Level::Scalar, ref_stream, ref_draws, ref_pots);
    EXPECT_GT(ref_draws, 0u);

    for (simd::Level lvl : simd::availableLevels()) {
        if (lvl == simd::Level::Scalar)
            continue;
        std::vector<std::vector<uint32_t>> stream;
        uint64_t draws = 0;
        std::vector<int32_t> pots;
        run(lvl, stream, draws, pots);
        EXPECT_EQ(stream, ref_stream) << simd::levelName(lvl);
        EXPECT_EQ(draws, ref_draws) << simd::levelName(lvl);
        EXPECT_EQ(pots, ref_pots) << simd::levelName(lvl);
    }
    setQuiet(false);
}

} // anonymous namespace
} // namespace nscs
