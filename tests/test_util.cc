/**
 * @file
 * Unit tests for the util substrate: logging, RNG, bit vectors,
 * saturation, statistics, tables, CSV and JSON.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "util/bitvec.hh"
#include "util/csv.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/saturate.hh"
#include "util/stats.hh"
#include "util/table.hh"

namespace nscs {
namespace {

// --- logging ---------------------------------------------------------------

TEST(Logging, StrprintfFormats)
{
    EXPECT_EQ(strprintf("x=%d y=%s", 42, "ok"), "x=42 y=ok");
    EXPECT_EQ(strprintf("%05.2f", 3.14159), "03.14");
    EXPECT_EQ(strprintf("empty"), "empty");
}

TEST(Logging, AssertPassesOnTrue)
{
    NSCS_ASSERT(1 + 1 == 2, "math still works");
    SUCCEED();
}

TEST(LoggingDeath, AssertPanicsOnFalse)
{
    EXPECT_DEATH(NSCS_ASSERT(false, "value was %d", 7), "value was 7");
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 3), "boom 3");
}

TEST(LoggingDeath, FatalExitsWithOne)
{
    EXPECT_EXIT(fatal("bad config %s", "x"),
                ::testing::ExitedWithCode(1), "bad config x");
}

// --- Lfsr16 ----------------------------------------------------------------

TEST(Lfsr16, ZeroSeedRemapped)
{
    Lfsr16 a(0);
    Lfsr16 b(0xACE1);
    EXPECT_EQ(a.next(), b.next());
}

TEST(Lfsr16, Deterministic)
{
    Lfsr16 a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Lfsr16, MaximalPeriod)
{
    // A maximal 16-bit LFSR revisits its seed after 2^16 - 1 steps
    // and never hits zero.
    Lfsr16 rng(1);
    uint32_t period = 0;
    uint16_t state;
    do {
        state = rng.next();
        ASSERT_NE(state, 0);
        ++period;
        ASSERT_LE(period, 70000u);
    } while (state != 1);
    EXPECT_EQ(period, 65535u);
}

TEST(Lfsr16, DrawCounting)
{
    Lfsr16 rng(7);
    EXPECT_EQ(rng.draws(), 0u);
    rng.next();
    rng.nextByte();
    rng.nextMasked(4);
    EXPECT_EQ(rng.draws(), 3u);
    rng.reset(7);
    EXPECT_EQ(rng.draws(), 0u);
}

TEST(Lfsr16, MaskedBitsBounded)
{
    Lfsr16 rng(99);
    for (int i = 0; i < 200; ++i)
        EXPECT_LT(rng.nextMasked(5), 32u);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.nextMasked(0), 0u);
}

TEST(Lfsr16, ByteDistributionRoughlyUniform)
{
    Lfsr16 rng(0x1234);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.nextByte();
    double mean = sum / n;
    EXPECT_NEAR(mean, 127.5, 3.0);
}

// --- Xoshiro256 ------------------------------------------------------------

TEST(Xoshiro, DeterministicAcrossInstances)
{
    Xoshiro256 a(42), b(42);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Xoshiro, DifferentSeedsDiffer)
{
    Xoshiro256 a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Xoshiro, UniformInUnitInterval)
{
    Xoshiro256 rng(7);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Xoshiro, BelowIsInRangeAndCoversAll)
{
    Xoshiro256 rng(11);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        uint64_t v = rng.below(7);
        ASSERT_LT(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Xoshiro, RangeInclusive)
{
    Xoshiro256 rng(13);
    for (int i = 0; i < 500; ++i) {
        int64_t v = rng.range(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
    }
}

TEST(Xoshiro, NormalMoments)
{
    Xoshiro256 rng(5);
    double sum = 0, sq = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double x = rng.normal();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Xoshiro, PoissonMeanSmallLambda)
{
    Xoshiro256 rng(3);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.poisson(2.5));
    EXPECT_NEAR(sum / n, 2.5, 0.1);
}

TEST(Xoshiro, PoissonMeanLargeLambda)
{
    Xoshiro256 rng(4);
    double sum = 0;
    const int n = 5000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.poisson(100.0));
    EXPECT_NEAR(sum / n, 100.0, 1.5);
}

TEST(Xoshiro, PoissonZeroLambda)
{
    Xoshiro256 rng(6);
    EXPECT_EQ(rng.poisson(0.0), 0u);
}

// --- BitVec ----------------------------------------------------------------

TEST(BitVec, SetTestClear)
{
    BitVec v(130);
    EXPECT_EQ(v.size(), 130u);
    EXPECT_TRUE(v.none());
    v.set(0);
    v.set(64);
    v.set(129);
    EXPECT_TRUE(v.test(0));
    EXPECT_TRUE(v.test(64));
    EXPECT_TRUE(v.test(129));
    EXPECT_FALSE(v.test(1));
    EXPECT_EQ(v.count(), 3u);
    v.clear(64);
    EXPECT_FALSE(v.test(64));
    EXPECT_EQ(v.count(), 2u);
    v.reset();
    EXPECT_TRUE(v.none());
}

TEST(BitVec, ForEachSetVisitsAscending)
{
    BitVec v(200);
    std::vector<size_t> want = {3, 63, 64, 65, 127, 128, 199};
    for (size_t i : want)
        v.set(i);
    std::vector<size_t> got;
    v.forEachSet([&got](size_t i) { got.push_back(i); });
    EXPECT_EQ(got, want);
}

TEST(BitVec, OrAndOperators)
{
    BitVec a(70), b(70);
    a.set(1);
    a.set(68);
    b.set(2);
    b.set(68);
    BitVec o = a;
    o |= b;
    EXPECT_EQ(o.count(), 3u);
    BitVec n = a;
    n &= b;
    EXPECT_EQ(n.count(), 1u);
    EXPECT_TRUE(n.test(68));
}

TEST(BitVec, WordCombinators)
{
    BitVec a(130), b(130);
    a.set(0);
    a.set(64);
    a.set(129);
    b.set(64);
    b.set(100);

    EXPECT_EQ(a.andPopcount(b), 1u);
    EXPECT_TRUE(a.intersects(b));

    // orAccumulate reports whether any bit changed.
    BitVec acc = a;
    EXPECT_TRUE(acc.orAccumulate(b));
    EXPECT_EQ(acc.count(), 4u);
    EXPECT_FALSE(acc.orAccumulate(b));

    BitVec empty(130);
    EXPECT_EQ(a.andPopcount(empty), 0u);
    EXPECT_FALSE(a.intersects(empty));

    // forEachSetWord skips zero words and reports word-aligned bits.
    std::vector<size_t> word_idx;
    size_t bits_seen = 0;
    acc.forEachSetWord([&](size_t w, uint64_t word) {
        word_idx.push_back(w);
        bits_seen += static_cast<size_t>(__builtin_popcountll(word));
    });
    EXPECT_EQ(word_idx, (std::vector<size_t>{0, 1, 2}));
    EXPECT_EQ(bits_seen, 4u);

    // forEachSetMasked visits the intersection in ascending order.
    std::vector<size_t> masked;
    a.forEachSetMasked(b, [&masked](size_t i) { masked.push_back(i); });
    EXPECT_EQ(masked, (std::vector<size_t>{64}));
}

TEST(BitVecDeath, CombinatorSizeMismatchPanics)
{
    BitVec a(64), b(65);
    EXPECT_DEATH(a.andPopcount(b), "size mismatch");
    EXPECT_DEATH(a.orAccumulate(b), "size mismatch");
    EXPECT_DEATH(a.intersects(b), "size mismatch");
    EXPECT_DEATH(a.forEachSetMasked(b, [](size_t) {}), "size mismatch");
}

TEST(BitVec, EqualityIncludesSize)
{
    BitVec a(10), b(10), c(11);
    EXPECT_EQ(a, b);
    a.set(3);
    EXPECT_NE(a, b);
    b.set(3);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

TEST(BitVecDeath, OutOfRangePanics)
{
    BitVec v(8);
    EXPECT_DEATH(v.set(8), "out of range");
    EXPECT_DEATH((void)v.test(100), "out of range");
}

// --- saturate --------------------------------------------------------------

TEST(Saturate, Bounds)
{
    EXPECT_EQ(satMax(8), 127);
    EXPECT_EQ(satMin(8), -128);
    EXPECT_EQ(satMax(20), 524287);
    EXPECT_EQ(satMin(20), -524288);
    EXPECT_EQ(satMax(31), INT32_MAX);
    EXPECT_EQ(satMin(31), INT32_MIN);
}

TEST(Saturate, AddClamps)
{
    EXPECT_EQ(satAdd(120, 10, 8), 127);
    EXPECT_EQ(satAdd(-120, -10, 8), -128);
    EXPECT_EQ(satAdd(100, 10, 8), 110);
    EXPECT_EQ(satAdd(0, 0, 8), 0);
}

TEST(Saturate, ClampIsMonotone)
{
    for (int64_t v = -1000; v <= 1000; v += 7) {
        int32_t c1 = satClamp(v, 8);
        int32_t c2 = satClamp(v + 1, 8);
        EXPECT_LE(c1, c2);
    }
}

// --- stats -----------------------------------------------------------------

TEST(RunningStat, MeanVarMinMax)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 4.0, 1e-12);
    EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
    EXPECT_EQ(s.min(), 2.0);
    EXPECT_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.sum(), 40.0, 1e-9);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
}

TEST(Histogram, BinningAndOverflow)
{
    Histogram h(0.0, 10.0, 10);
    h.add(-1.0);
    h.add(0.0);
    h.add(5.5);
    h.add(9.999);
    h.add(10.0);
    h.add(42.0);
    EXPECT_EQ(h.count(), 6u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(5), 1u);
    EXPECT_EQ(h.binCount(9), 1u);
}

TEST(Histogram, QuantileOrdering)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 1000; ++i)
        h.add(static_cast<double>(i % 100));
    double p50 = h.quantile(0.5);
    double p99 = h.quantile(0.99);
    EXPECT_LE(p50, p99);
    EXPECT_NEAR(p50, 50.0, 2.0);
    EXPECT_NEAR(p99, 99.0, 2.0);
}

TEST(StatGroup, FormatAndGet)
{
    StatGroup g;
    g.add("a.b", 1.5, "first");
    g.add("a.c", 2.0, "second");
    EXPECT_DOUBLE_EQ(g.get("a.b"), 1.5);
    EXPECT_TRUE(std::isnan(g.get("missing")));
    std::string text = g.format();
    EXPECT_NE(text.find("a.b"), std::string::npos);
    EXPECT_NE(text.find("# first"), std::string::npos);
}

// --- table -----------------------------------------------------------------

TEST(TextTable, AlignsColumns)
{
    TextTable t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer", "22"});
    std::string s = t.str();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("longer"), std::string::npos);
    // Header separator present.
    EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TextTable, Formatters)
{
    EXPECT_EQ(fmtF(3.14159, 2), "3.14");
    EXPECT_EQ(fmtInt(1234567), "1,234,567");
    EXPECT_EQ(fmtInt(7), "7");
    EXPECT_EQ(fmtSi(0.0), "0");
    EXPECT_EQ(fmtSi(2.56e9), "2.56G");
    EXPECT_EQ(fmtSi(26e-12, "J"), "26.0pJ");
    EXPECT_EQ(fmtBytes(512), "512 B");
    EXPECT_EQ(fmtBytes(1536 * 1024), "1.50 MiB");
}

// --- csv -------------------------------------------------------------------

TEST(Csv, EscapesSpecials)
{
    EXPECT_EQ(CsvWriter::escape("plain"), "plain");
    EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
    EXPECT_EQ(CsvWriter::escape("q\"q"), "\"q\"\"q\"");
}

TEST(Csv, WritesRows)
{
    std::ostringstream os;
    CsvWriter w(os);
    w.row({"a", "b,c"});
    w.row({"1", "2"});
    EXPECT_EQ(os.str(), "a,\"b,c\"\n1,2\n");
}

// --- json ------------------------------------------------------------------

TEST(Json, ScalarRoundTrip)
{
    JsonValue o = JsonValue::object();
    o.set("i", JsonValue::integer(-42));
    o.set("d", JsonValue::number(2.5));
    o.set("s", JsonValue::string("hi \"there\"\n"));
    o.set("b", JsonValue::boolean(true));
    o.set("n", JsonValue());

    auto res = parseJson(o.dump());
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.value.at("i").asInt(), -42);
    EXPECT_DOUBLE_EQ(res.value.at("d").asDouble(), 2.5);
    EXPECT_EQ(res.value.at("s").asString(), "hi \"there\"\n");
    EXPECT_TRUE(res.value.at("b").asBool());
    EXPECT_TRUE(res.value.at("n").isNull());
}

TEST(Json, ArraysNest)
{
    auto res = parseJson("[1, [2, 3], {\"k\": [4]}]");
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.value.size(), 3u);
    EXPECT_EQ(res.value.at(1).at(1).asInt(), 3);
    EXPECT_EQ(res.value.at(2).at("k").at(0).asInt(), 4);
}

TEST(Json, PrettyPrintParses)
{
    JsonValue arr = JsonValue::array();
    for (int i = 0; i < 3; ++i)
        arr.append(JsonValue::integer(i));
    JsonValue o = JsonValue::object();
    o.set("xs", std::move(arr));
    std::string pretty = o.dump(2);
    EXPECT_NE(pretty.find('\n'), std::string::npos);
    auto res = parseJson(pretty);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.value.at("xs").size(), 3u);
}

TEST(Json, ParseErrorsReported)
{
    EXPECT_FALSE(parseJson("").ok);
    EXPECT_FALSE(parseJson("{").ok);
    EXPECT_FALSE(parseJson("[1,]").ok);
    EXPECT_FALSE(parseJson("{\"a\" 1}").ok);
    EXPECT_FALSE(parseJson("tru").ok);
    EXPECT_FALSE(parseJson("1 2").ok);
    EXPECT_FALSE(parseJson("\"unterminated").ok);
}

TEST(Json, NumbersIntegralVsFloat)
{
    auto res = parseJson("[7, 7.0, 7e0, -0]");
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(res.value.at(0).type(), JsonValue::Type::Int);
    EXPECT_EQ(res.value.at(1).type(), JsonValue::Type::Double);
    EXPECT_EQ(res.value.at(1).asInt(), 7);
    EXPECT_EQ(res.value.at(2).asInt(), 7);
}

TEST(Json, UnicodeEscapes)
{
    auto res = parseJson("\"a\\u0041\\u00e9\"");
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.value.asString(), "aA\xc3\xa9");
}

TEST(Json, GettersWithDefaults)
{
    auto res = parseJson("{\"x\": 5}");
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(res.value.getInt("x", 0), 5);
    EXPECT_EQ(res.value.getInt("y", 9), 9);
    EXPECT_EQ(res.value.getString("z", "dflt"), "dflt");
    EXPECT_TRUE(res.value.getBool("w", true));
}

TEST(Json, FileRoundTrip)
{
    std::string path = ::testing::TempDir() + "/nscs_json_test.json";
    ASSERT_TRUE(writeFile(path, "{\"k\": [1, 2]}"));
    std::string text;
    ASSERT_TRUE(readFile(path, text));
    auto res = parseJson(text);
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(res.value.at("k").size(), 2u);
    EXPECT_FALSE(readFile("/nonexistent/nope", text));
}

} // anonymous namespace
} // namespace nscs
