#include "lint/lint.hh"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>

namespace nscs::lint {

namespace {

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/**
 * Blank comments, string/character literals and preprocessor
 * directives out of @p src, preserving length and line structure so
 * offsets and line numbers survive.  Raw strings and backslash line
 * continuations are handled; a '\'' directly after an alphanumeric
 * character is treated as a digit separator, not a character literal.
 */
std::string
stripToCode(const std::string &src)
{
    std::string out(src);
    enum class St { Code, Line, Block, Str, Chr, Raw } st = St::Code;
    std::string raw_delim;
    bool line_start = true;  // only whitespace seen on this line
    for (size_t i = 0; i < src.size(); ++i) {
        char c = src[i];
        char n = i + 1 < src.size() ? src[i + 1] : '\0';
        switch (st) {
          case St::Code:
            if (line_start && c == '#') {
                // Preprocessor directive: blank through any
                // backslash-continued lines.
                while (i < src.size()) {
                    if (src[i] == '\n') {
                        bool cont = i > 0 && src[i - 1] == '\\';
                        if (!cont)
                            break;
                    } else {
                        out[i] = ' ';
                    }
                    ++i;
                }
                --i;  // the loop increment revisits the newline
                break;
            }
            if (c == '/' && n == '/') {
                st = St::Line;
                out[i] = ' ';
            } else if (c == '/' && n == '*') {
                st = St::Block;
                out[i] = ' ';
            } else if (c == '"') {
                if (i > 0 && src[i - 1] == 'R') {
                    size_t p = i + 1;
                    raw_delim.clear();
                    while (p < src.size() && src[p] != '(')
                        raw_delim += src[p++];
                    st = St::Raw;
                } else {
                    st = St::Str;
                }
            } else if (c == '\'' && !(i > 0 && identChar(src[i - 1]))) {
                st = St::Chr;
            }
            break;
          case St::Line:
            if (c == '\n')
                st = St::Code;
            else
                out[i] = ' ';
            break;
          case St::Block:
            if (c == '*' && n == '/') {
                out[i] = ' ';
                out[i + 1] = ' ';
                ++i;
                st = St::Code;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
          case St::Str:
            if (c == '\\') {
                out[i] = ' ';
                if (n != '\n')
                    out[++i] = ' ';
            } else if (c == '"') {
                st = St::Code;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
          case St::Chr:
            if (c == '\\') {
                out[i] = ' ';
                if (n != '\n')
                    out[++i] = ' ';
            } else if (c == '\'') {
                st = St::Code;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
          case St::Raw: {
            std::string close = ")" + raw_delim + "\"";
            if (src.compare(i, close.size(), close) == 0) {
                i += close.size() - 1;
                st = St::Code;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
          }
        }
        if (c == '\n')
            line_start = true;
        else if (!std::isspace(static_cast<unsigned char>(c)))
            line_start = false;
    }
    return out;
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    size_t b = 0;
    while (b <= text.size()) {
        size_t e = text.find('\n', b);
        if (e == std::string::npos) {
            lines.push_back(text.substr(b));
            break;
        }
        lines.push_back(text.substr(b, e - b));
        b = e + 1;
    }
    return lines;
}

/** Qualification of an identifier occurrence. */
enum class Qual {
    Bare,    //!< no qualifier
    Std,     //!< std:: (possibly ::std::)
    Member,  //!< preceded by . or ->
    Other,   //!< some other X:: qualifier
};

Qual
qualifierBefore(const std::string &line, size_t ident_begin)
{
    size_t p = ident_begin;
    while (p > 0 && std::isspace(static_cast<unsigned char>(line[p - 1])))
        --p;
    if (p == 0)
        return Qual::Bare;
    if (line[p - 1] == '.')
        return Qual::Member;
    if (p >= 2 && line[p - 2] == '-' && line[p - 1] == '>')
        return Qual::Member;
    if (p >= 2 && line[p - 2] == ':' && line[p - 1] == ':') {
        size_t q = p - 2;
        size_t e = q;
        while (q > 0 && identChar(line[q - 1]))
            --q;
        std::string scope = line.substr(q, e - q);
        return (scope == "std" || scope.empty()) ? Qual::Std
                                                 : Qual::Other;
    }
    return Qual::Bare;
}

/**
 * Find call-like occurrences of identifier @p name in @p line: exact
 * identifier match, followed (after whitespace) by '(', and either
 * unqualified or std::-qualified.  Member calls (x.name(), x->name())
 * and foreign qualifiers (Foo::name() ) do not count.
 */
bool
hasBannedCall(const std::string &line, const std::string &name)
{
    size_t pos = 0;
    while ((pos = line.find(name, pos)) != std::string::npos) {
        size_t end = pos + name.size();
        bool boundary = (pos == 0 || !identChar(line[pos - 1])) &&
            (end >= line.size() || !identChar(line[end]));
        if (boundary) {
            size_t p = end;
            while (p < line.size() &&
                   std::isspace(static_cast<unsigned char>(line[p])))
                ++p;
            if (p < line.size() && line[p] == '(') {
                Qual q = qualifierBefore(line, pos);
                if (q == Qual::Bare || q == Qual::Std)
                    return true;
            }
        }
        pos = end;
    }
    return false;
}

/** Whole-token substring occurrence (e.g. "std::priority_queue"). */
bool
hasBannedName(const std::string &line, const std::string &name)
{
    size_t pos = 0;
    while ((pos = line.find(name, pos)) != std::string::npos) {
        size_t end = pos + name.size();
        bool boundary = (pos == 0 || (!identChar(line[pos - 1]) &&
                                      line[pos - 1] != ':')) &&
            (end >= line.size() || !identChar(line[end]));
        if (boundary)
            return true;
        pos = end;
    }
    return false;
}

bool
containsToken(const std::string &text, const std::string &token)
{
    size_t pos = 0;
    while ((pos = text.find(token, pos)) != std::string::npos) {
        size_t end = pos + token.size();
        if ((pos == 0 || !identChar(text[pos - 1])) &&
            (end >= text.size() || !identChar(text[end])))
            return true;
        pos = end;
    }
    return false;
}

struct NameRule
{
    const char *rule;
    const char *name;
    bool call;  //!< true: call-like identifier; false: plain name
    const char *message;
};

const NameRule kNameRules[] = {
    // wall-clock: host time leaks nondeterminism into simulations.
    {"wall-clock", "time", true,
     "wall-clock time source; simulated time is the tick counter "
     "(util/rng seeds randomness, Simulator::now() orders events)"},
    {"wall-clock", "clock", true,
     "wall-clock time source; simulated time is the tick counter"},
    {"wall-clock", "gettimeofday", true,
     "wall-clock time source; simulated time is the tick counter"},
    {"wall-clock", "clock_gettime", true,
     "wall-clock time source; simulated time is the tick counter"},
    {"wall-clock", "localtime", true,
     "wall-clock time source; simulated time is the tick counter"},
    {"wall-clock", "gmtime", true,
     "wall-clock time source; simulated time is the tick counter"},
    {"wall-clock", "std::chrono::system_clock", false,
     "wall-clock time source; simulated time is the tick counter"},
    {"wall-clock", "std::chrono::high_resolution_clock", false,
     "wall-clock time source; simulated time is the tick counter"},
    {"wall-clock", "std::chrono::steady_clock", false,
     "host timing in library code; if this is perf calibration that "
     "cannot change architectural output, annotate with "
     "nscs-lint: allow(wall-clock): <why>"},
    // raw-random: all randomness flows through util/rng.
    {"raw-random", "rand", true,
     "raw libc PRNG; use util/rng (Lfsr16 architectural, Xoshiro256 "
     "host-side) so draws are seeded and deterministic"},
    {"raw-random", "srand", true,
     "raw libc PRNG seeding; use util/rng"},
    {"raw-random", "random", true,
     "raw libc PRNG; use util/rng"},
    {"raw-random", "drand48", true,
     "raw libc PRNG; use util/rng"},
    {"raw-random", "lrand48", true,
     "raw libc PRNG; use util/rng"},
    {"raw-random", "rand_r", true,
     "raw libc PRNG; use util/rng"},
    {"raw-random", "std::random_device", false,
     "nondeterministic entropy source; use util/rng with an explicit "
     "seed"},
    {"raw-random", "std::mt19937", false,
     "std random engine; use util/rng (Xoshiro256) so all draws share "
     "one seeding discipline"},
    {"raw-random", "std::mt19937_64", false,
     "std random engine; use util/rng"},
    {"raw-random", "std::minstd_rand", false,
     "std random engine; use util/rng"},
    {"raw-random", "std::default_random_engine", false,
     "std random engine; use util/rng"},
    // raw-io: library output goes through util/logging.
    {"raw-io", "printf", true,
     "direct stdout write; report through util/logging "
     "(warn/inform/fatal/panic) or return data to the caller"},
    {"raw-io", "vprintf", true,
     "direct stdout write; use util/logging"},
    {"raw-io", "puts", true,
     "direct stdout write; use util/logging"},
    {"raw-io", "putchar", true,
     "direct stdout write; use util/logging"},
    {"raw-io", "std::cout", false,
     "direct stdout write; use util/logging or return data"},
    {"raw-io", "std::cerr", false,
     "direct stderr write; use util/logging (warn/inform) so tests "
     "can suppress it"},
    // priority-queue: the PR-3 self-event heap lesson.
    {"priority-queue", "std::priority_queue", false,
     "opaque heap in a tick path; use an explicit vector heap "
     "(std::push_heap/pop_heap, see Core::selfEvents_) so stale "
     "entries can be lazily compacted and footprintBytes() can "
     "account for it"},
    // raw-serialize: persisted state must survive compilers,
    // endianness and struct-layout changes, so byte-image tricks are
    // banned; snapshots go through runtime/snapshot + util/json
    // (std::bit_cast for value-level bit reinterpretation is fine).
    {"raw-serialize", "reinterpret_cast", false,
     "raw byte reinterpretation; persistence must go through the "
     "snapshot API (runtime/snapshot + util/json), value punning "
     "through std::bit_cast"},
    {"raw-serialize", "memcpy", true,
     "raw byte copy of object representation; persist through the "
     "snapshot API (runtime/snapshot + util/json)"},
    {"raw-serialize", "memmove", true,
     "raw byte copy of object representation; persist through the "
     "snapshot API (runtime/snapshot + util/json)"},
    {"raw-serialize", "fread", true,
     "raw byte deserialization; persist through the snapshot API "
     "(runtime/snapshot + util/json)"},
    {"raw-serialize", "fwrite", true,
     "raw byte serialization; persist through the snapshot API "
     "(runtime/snapshot + util/json)"},
};

void
runNameRules(const std::string &path,
             const std::vector<std::string> &code_lines,
             std::vector<Finding> &findings)
{
    for (size_t i = 0; i < code_lines.size(); ++i) {
        const std::string &line = code_lines[i];
        if (line.empty())
            continue;
        for (const NameRule &r : kNameRules) {
            bool hit = r.call ? hasBannedCall(line, r.name)
                              : hasBannedName(line, r.name);
            if (hit) {
                findings.push_back({path,
                                    static_cast<uint32_t>(i + 1),
                                    r.rule,
                                    std::string(r.name) + ": " +
                                        r.message});
            }
        }
        // fprintf/vfprintf are legal only when aimed at stderr (what
        // util/logging does); stdout targets are raw-io findings.
        for (const char *fn : {"fprintf", "vfprintf"}) {
            size_t pos = 0;
            while ((pos = line.find(fn, pos)) != std::string::npos) {
                size_t end = pos + std::string(fn).size();
                bool boundary =
                    (pos == 0 || !identChar(line[pos - 1])) &&
                    (end >= line.size() || !identChar(line[end]));
                if (boundary) {
                    size_t p = end;
                    while (p < line.size() && (line[p] == ' ' ||
                                               line[p] == '('))
                        ++p;
                    if (line.compare(p, 6, "stdout") == 0) {
                        findings.push_back(
                            {path, static_cast<uint32_t>(i + 1),
                             "raw-io",
                             std::string(fn) +
                                 "(stdout, ...): direct stdout "
                                 "write; use util/logging"});
                    }
                }
                pos = end;
            }
        }
    }
}

/** True for the SIMD dispatch layer itself, where intrinsics live. */
bool
simdLayerFile(const std::string &path)
{
    return path.ends_with("util/simd.hh") ||
        path.ends_with("util/simd.cc");
}

/**
 * True when @p tok looks like a vendor SIMD intrinsic or vector
 * type: x86 `_mm*`/`__m*` reserved identifiers, NEON `v<op>q_<ty>`
 * intrinsics, or NEON `<elem>x<lanes>_t` vector types.
 */
bool
intrinsicToken(const std::string &tok)
{
    if (tok.rfind("_mm", 0) == 0 || tok.rfind("__m", 0) == 0)
        return true;
    size_t q = tok.find("q_");
    if (tok.size() > 4 && tok[0] == 'v' && q != std::string::npos &&
        q >= 2) {
        bool clean = true;  // vaddq_u8 yes, velocity_sq_ no
        for (size_t i = 1; i < q && clean; ++i)
            clean = std::isalnum(static_cast<unsigned char>(tok[i]));
        if (clean)
            return true;
    }
    if (tok.size() > 6 && tok.ends_with("_t")) {
        size_t x = tok.find('x', 1);
        if (x != std::string::npos && x + 1 < tok.size() &&
            std::isdigit(static_cast<unsigned char>(tok[x - 1])) &&
            std::isdigit(static_cast<unsigned char>(tok[x + 1])))
            return true;
    }
    return false;
}

const char *const kIntrinsicHeaders[] = {
    "immintrin.h", "x86intrin.h", "emmintrin.h", "xmmintrin.h",
    "pmmintrin.h", "smmintrin.h", "tmmintrin.h", "nmmintrin.h",
    "wmmintrin.h", "ammintrin.h", "arm_neon.h",  "arm_sve.h",
    "arm_acle.h",
};

/**
 * simd-guard: vendor intrinsics and intrinsic headers are confined
 * to the dispatch layer (src/util/simd.*), where the cpuid probe and
 * the NSCS_SIMD override keep every level reachable and testable.
 * Scans raw lines for intrinsic-header includes (stripToCode blanks
 * preprocessor directives) and code lines for intrinsic tokens.
 */
void
runSimdGuardRule(const std::string &path,
                 const std::vector<std::string> &raw_lines,
                 const std::vector<std::string> &code_lines,
                 std::vector<Finding> &findings)
{
    if (simdLayerFile(path))
        return;
    const char *msg =
        "raw SIMD intrinsics belong in the dispatch layer "
        "(src/util/simd.*) behind nscs::simd::ops(), so the runtime "
        "probe and the NSCS_SIMD override keep every level reachable";
    for (size_t i = 0; i < raw_lines.size(); ++i) {
        const std::string &line = raw_lines[i];
        size_t b = line.find_first_not_of(" \t");
        if (b == std::string::npos || line[b] != '#' ||
            line.find("include", b) == std::string::npos)
            continue;
        for (const char *hdr : kIntrinsicHeaders) {
            if (line.find(hdr) != std::string::npos) {
                findings.push_back({path,
                                    static_cast<uint32_t>(i + 1),
                                    "simd-guard",
                                    "#include <" + std::string(hdr) +
                                        ">: " + msg});
                break;
            }
        }
    }
    for (size_t i = 0; i < code_lines.size(); ++i) {
        const std::string &line = code_lines[i];
        size_t p = 0;
        while (p < line.size()) {
            if (!identChar(line[p])) {
                ++p;
                continue;
            }
            size_t b = p;
            while (p < line.size() && identChar(line[p]))
                ++p;
            std::string tok = line.substr(b, p - b);
            if (intrinsicToken(tok)) {
                findings.push_back({path,
                                    static_cast<uint32_t>(i + 1),
                                    "simd-guard",
                                    tok + ": " + msg});
                break;  // one finding per line
            }
        }
    }
}

/**
 * Flag mutable namespace-scope variable definitions.  Walks the
 * stripped code tracking brace kinds: namespace braces are
 * transparent (their contents stay "file scope"), everything else —
 * classes, functions, initializer lists — is opaque and skipped.
 * Statements at file scope ending in ';' are classified as variable
 * definitions unless they look like declarations (contain '(' before
 * any '=', or start with a declaration keyword) or carry a guard
 * (const/constexpr/constinit/thread_local/std::atomic).
 */
void
runFileScopeRule(const std::string &path, const std::string &code,
                 std::vector<Finding> &findings)
{
    std::vector<bool> transparent;  // brace stack
    std::string stmt;
    uint32_t line = 1;
    uint32_t stmt_line = 0;
    size_t opaque_depth = 0;

    auto atFileScope = [&] {
        return std::all_of(transparent.begin(), transparent.end(),
                           [](bool t) { return t; });
    };
    auto classify = [&] {
        size_t b = stmt.find_first_not_of(" \t\n");
        if (b == std::string::npos)
            return;
        std::string s = stmt.substr(b);
        for (const char *kw :
             {"using", "typedef", "template", "static_assert",
              "extern", "namespace", "class", "struct", "enum",
              "union", "friend", "operator"})
            if (containsToken(s, kw))
                return;
        size_t eq = s.find('=');
        size_t paren = s.find('(');
        if (paren != std::string::npos &&
            (eq == std::string::npos || paren < eq))
            return;  // function or constructor-style declaration
        for (const char *guard :
             {"const", "constexpr", "constinit", "thread_local"})
            if (containsToken(s, guard))
                return;
        if (s.find("std::atomic") != std::string::npos)
            return;
        // Must look like "type name ...;": at least two identifiers.
        size_t p = 0;
        int idents = 0;
        while (p < s.size() && idents < 2) {
            if (identChar(s[p])) {
                ++idents;
                while (p < s.size() && identChar(s[p]))
                    ++p;
            } else {
                ++p;
            }
        }
        if (idents < 2)
            return;
        findings.push_back(
            {path, stmt_line, "file-scope-state",
             "mutable file-scope state; make it const/constexpr, "
             "std::atomic, thread_local, or carry it in an object "
             "the callers own"});
    };

    for (size_t i = 0; i < code.size(); ++i) {
        char c = code[i];
        if (c == '\n')
            ++line;
        if (opaque_depth > 0) {
            if (c == '{')
                ++opaque_depth;
            else if (c == '}')
                --opaque_depth;
            if (opaque_depth == 0) {
                // A function definition's body is not followed by a
                // ';' — drop its header here or it would glue onto
                // (and mask) the next file-scope statement.  Variable
                // definitions keep a brace-group marker so classify()
                // sees "name = {}".
                size_t eq = stmt.find('=');
                size_t paren = stmt.find('(');
                bool func_like = paren != std::string::npos &&
                    (eq == std::string::npos || paren < eq);
                if (func_like) {
                    stmt.clear();
                    stmt_line = 0;
                } else {
                    stmt += "{}";
                }
            }
            continue;
        }
        if (c == '{') {
            if (containsToken(stmt, "namespace") && atFileScope()) {
                transparent.push_back(true);
                stmt.clear();
                stmt_line = 0;
            } else {
                opaque_depth = 1;
            }
        } else if (c == '}') {
            if (!transparent.empty())
                transparent.pop_back();
            stmt.clear();
            stmt_line = 0;
        } else if (c == ';') {
            if (atFileScope())
                classify();
            stmt.clear();
            stmt_line = 0;
        } else {
            if (stmt_line == 0 &&
                !std::isspace(static_cast<unsigned char>(c)))
                stmt_line = line;
            stmt += c;
        }
    }
}

struct AllowComment
{
    uint32_t line = 0;
    std::string rule;
};

/**
 * Collect "nscs-lint: allow(<rule>): <reason>" comments from the raw
 * lines.  Malformed allows (unknown rule, missing reason) become
 * bad-allow findings immediately.
 */
std::vector<AllowComment>
collectAllows(const std::string &path,
              const std::vector<std::string> &raw_lines,
              std::vector<Finding> &findings)
{
    std::vector<AllowComment> allows;
    const std::string marker = "nscs-lint: allow(";
    for (size_t i = 0; i < raw_lines.size(); ++i) {
        const std::string &line = raw_lines[i];
        size_t pos = line.find(marker);
        if (pos == std::string::npos)
            continue;
        auto ln = static_cast<uint32_t>(i + 1);
        size_t rb = pos + marker.size();
        size_t re = line.find(')', rb);
        if (re == std::string::npos) {
            findings.push_back({path, ln, "bad-allow",
                                "unterminated allow(...) comment"});
            continue;
        }
        std::string rule = line.substr(rb, re - rb);
        const auto &ids = ruleIds();
        if (std::find(ids.begin(), ids.end(), rule) == ids.end()) {
            findings.push_back({path, ln, "bad-allow",
                                "allow names unknown rule '" + rule +
                                    "'"});
            continue;
        }
        size_t p = re + 1;
        while (p < line.size() && (line[p] == ':' || line[p] == ' '))
            ++p;
        if (line.size() - p < 3 || line.find(':', re) == std::string::npos) {
            findings.push_back(
                {path, ln, "bad-allow",
                 "allow(" + rule + ") needs a reason: "
                 "// nscs-lint: allow(" + rule + "): <why>"});
            continue;
        }
        allows.push_back({ln, rule});
    }
    return allows;
}

} // anonymous namespace

const std::vector<std::string> &
ruleIds()
{
    static const std::vector<std::string> kIds = {
        "wall-clock",     "raw-random",       "raw-io",
        "priority-queue", "raw-serialize",    "file-scope-state",
        "simd-guard",     "bad-allow",
    };
    return kIds;
}

bool
lintableFile(const std::string &path)
{
    auto ends = [&](const char *suf) {
        std::string s(suf);
        return path.size() >= s.size() &&
            path.compare(path.size() - s.size(), s.size(), s) == 0;
    };
    return ends(".hh") || ends(".cc");
}

std::vector<Finding>
lintSource(const std::string &path, const std::string &content)
{
    std::vector<Finding> findings;
    std::vector<std::string> raw_lines = splitLines(content);
    std::string code = stripToCode(content);
    std::vector<std::string> code_lines = splitLines(code);

    std::vector<AllowComment> allows =
        collectAllows(path, raw_lines, findings);

    runNameRules(path, code_lines, findings);
    runFileScopeRule(path, code, findings);
    runSimdGuardRule(path, raw_lines, code_lines, findings);

    // An allow on the finding's line or the line above waives it;
    // bad-allow findings are never waivable.
    std::erase_if(findings, [&](const Finding &f) {
        if (f.rule == "bad-allow")
            return false;
        for (const AllowComment &a : allows)
            if (a.rule == f.rule &&
                (a.line == f.line || a.line + 1 == f.line))
                return true;
        return false;
    });

    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    return findings;
}

} // namespace nscs::lint
