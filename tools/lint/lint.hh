/**
 * @file
 * nscs_lint — repo-specific determinism and hygiene linter.
 *
 * Enforces invariants of the nscs tree that no generic tool knows
 * about.  The engine lints one translation unit at a time from an
 * in-memory buffer (so the self-tests can feed it fixture snippets)
 * and reports findings as structured values; the nscs_lint CLI walks
 * directories and turns findings into diagnostics + exit status.
 *
 * Rules (ids as reported in findings):
 *
 *  - wall-clock:       no wall-clock time sources (time(), clock(),
 *                      std::chrono clocks, gettimeofday...) in
 *                      library code.  Simulated time is the tick
 *                      counter; host time makes runs unreproducible.
 *  - raw-random:       no rand()/srand()/std::random_device/
 *                      std::mt19937/... — all randomness must flow
 *                      through util/rng (Lfsr16 for architectural
 *                      draws, Xoshiro256 host-side), which is seeded
 *                      and deterministic.
 *  - raw-io:           no printf()/puts()/std::cout/std::cerr —
 *                      library code reports through util/logging
 *                      (warn/inform/fatal/panic) so output is
 *                      uniform and test-suppressible.  fprintf is
 *                      allowed only when targeting stderr (that is
 *                      what util/logging itself uses).
 *  - priority-queue:   no std::priority_queue — tick paths must use
 *                      an explicit vector heap (push_heap/pop_heap)
 *                      so stale entries can be lazily compacted and
 *                      the footprint accounted (the PR-3 self-event
 *                      heap lesson).
 *  - file-scope-state: no unguarded mutable file-scope (namespace
 *                      scope) variables — shared mutable globals are
 *                      invisible coupling and a data-race hazard
 *                      under the parallel tick engine.  const /
 *                      constexpr / std::atomic / thread_local are
 *                      all fine.
 *  - simd-guard:       no vendor SIMD intrinsics (the _mm and __m
 *                      prefixes, NEON vopq_ty intrinsics and
 *                      element-x-lane vector types) or intrinsic
 *                      headers (immintrin.h, arm_neon.h, ...)
 *                      outside the dispatch layer src/util/simd.hh
 *                      and simd.cc — kernels live behind
 *                      nscs::simd::ops() so the cpuid probe and the
 *                      NSCS_SIMD override keep every level reachable
 *                      and differential tests can sweep them.
 *  - bad-allow:        an allow comment that names an unknown rule
 *                      or omits the reason text.
 *
 * Suppression: a finding on line N is waived by an allow comment on
 * line N or N-1 of the form
 *
 *     // nscs-lint: allow(<rule>): <non-empty reason>
 *
 * The reason is mandatory — an allow without one is itself a finding.
 *
 * The engine understands enough C++ lexing to skip comments, string
 * and character literals (including raw strings), so banned names in
 * documentation or message text do not trip the rules.
 */

#ifndef NSCS_TOOLS_LINT_LINT_HH
#define NSCS_TOOLS_LINT_LINT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace nscs::lint {

/** One rule violation. */
struct Finding
{
    std::string file;     //!< path as handed to lintSource
    uint32_t line = 0;    //!< 1-based line number
    std::string rule;     //!< rule id, e.g. "raw-random"
    std::string message;  //!< human-readable diagnostic

    bool operator==(const Finding &other) const = default;
};

/** All rule ids the engine knows, in reporting order. */
const std::vector<std::string> &ruleIds();

/**
 * Lint one source buffer.  @p path is used for diagnostics only; the
 * engine never touches the filesystem.  Findings come back in line
 * order.
 */
std::vector<Finding> lintSource(const std::string &path,
                                const std::string &content);

/** @return true for files the linter covers (.hh / .cc). */
bool lintableFile(const std::string &path);

} // namespace nscs::lint

#endif // NSCS_TOOLS_LINT_LINT_HH
