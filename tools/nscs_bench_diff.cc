/**
 * @file
 * nscs_bench_diff — compare a BENCH_core.json produced by the current
 * build against a committed baseline and flag throughput regressions,
 * optionally appending the current run to a per-commit history series.
 *
 * Usage:
 *   nscs_bench_diff BASELINE.json CURRENT.json [--tolerance F]
 *                   [--series FILE] [--commit ID]
 *
 * --series FILE appends one entry per invocation to FILE (created on
 * first use): {"commit": ID, "workloads": [{name, fastTicksPerSec,
 * speedup}, ...]} drawn from CURRENT.json.  The series is the
 * per-commit artifact trajectory the ROADMAP calls for — pairwise
 * diffs answer "did this commit regress?", the series answers "how
 * has throughput moved over the project's life?".  Entries are
 * appended even when the diff flags regressions (the history must
 * record bad commits too); the exit status is unaffected by series
 * I/O problems (a warning is printed), since CI artifact bookkeeping
 * must not mask a real regression verdict.
 *
 * For every workload present in both files (matched by name, across
 * the "workloads", "updateWorkloads", "classifierWorkloads"
 * and "boardWorkloads"
 * arrays) the tool prints baseline vs current fast-path ticks/s and
 * speedup, and flags a REGRESSION when the current fast-over-scalar
 * *speedup* falls below (1 - tolerance) x the baseline speedup.
 * Workload-set differences are reported, never silently skipped: a
 * baseline workload missing from the current run prints a REMOVED
 * row (flagged — lost coverage is a regression), and a current
 * workload absent from the baseline prints an informational ADDED
 * row (a fresh workload has no reference to regress against).  The speedup ratio is
 * machine-independent (both paths ran on the same host in the same
 * process), so a committed baseline from one machine remains a valid
 * reference on a differently-sized CI runner; absolute ticks/s are
 * printed for context only.  Workloads without a speedup field fall
 * back to the ticks/s ratio.  The default tolerance is 0.30: CI
 * shared-runner timings are noisy, so only gross regressions flag.
 *
 * Exit status: 0 when clean, 1 when any regression flagged, 2 on
 * usage/parse errors.  The CI perf-smoke step runs this non-gating;
 * the exit status and table are the per-commit record of the bench
 * trajectory (see ROADMAP).
 */

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "util/json.hh"
#include "util/table.hh"

using namespace nscs;

namespace {

struct Row
{
    std::string name;
    double baseTps = 0.0;
    double curTps = 0.0;
    double baseSpeedup = 0.0;
    double curSpeedup = 0.0;
};

JsonValue
loadDoc(const char *path)
{
    std::string text;
    if (!readFile(path, text)) {
        std::cerr << "cannot read '" << path << "'\n";
        std::exit(2);
    }
    JsonParseResult r = parseJson(text);
    if (!r.ok) {
        std::cerr << path << ": parse error: " << r.error << "\n";
        std::exit(2);
    }
    return r.value;
}

/** Collect (name -> row side) from one array of workload objects. */
void
collect(const JsonValue &doc, const char *key, bool current,
        std::vector<Row> &rows)
{
    if (!doc.has(key))
        return;
    const JsonValue &arr = doc.at(key);
    for (size_t i = 0; i < arr.size(); ++i) {
        const JsonValue &w = arr.at(i);
        if (!w.has("name") || !w.has("fastTicksPerSec"))
            continue;
        std::string name = w.at("name").asString();
        Row *row = nullptr;
        for (Row &r : rows)
            if (r.name == name)
                row = &r;
        if (!row) {
            // A current-only workload still gets a row: it reports
            // as ADDED rather than vanishing from the diff.
            rows.push_back(Row{name, 0, 0, 0, 0});
            row = &rows.back();
        }
        double tps = w.at("fastTicksPerSec").asDouble();
        double sp = w.has("speedup") ? w.at("speedup").asDouble() : 0.0;
        if (current) {
            row->curTps = tps;
            row->curSpeedup = sp;
        } else {
            row->baseTps = tps;
            row->baseSpeedup = sp;
        }
    }
}

/**
 * Append the current run's workload rows to the history series at
 * @p path.  Returns false (with a warning) on I/O or parse trouble;
 * the caller's verdict must not change either way.
 */
bool
appendSeries(const char *path, const std::string &commit,
             const JsonValue &cur)
{
    JsonValue entries = JsonValue::array();
    std::string text;
    if (readFile(path, text)) {
        JsonParseResult r = parseJson(text);
        if (!r.ok || !r.value.has("entries")) {
            std::cerr << "warning: series '" << path
                      << "' is unreadable or has no 'entries'; "
                         "not appending\n";
            return false;
        }
        const JsonValue &old = r.value.at("entries");
        for (size_t i = 0; i < old.size(); ++i)
            entries.append(old.at(i));
    }

    JsonValue entry = JsonValue::object();
    entry.set("commit", JsonValue::string(commit));
    JsonValue workloads = JsonValue::array();
    for (const char *key :
         {"workloads", "updateWorkloads", "classifierWorkloads",
          "boardWorkloads"}) {
        if (!cur.has(key))
            continue;
        const JsonValue &arr = cur.at(key);
        for (size_t i = 0; i < arr.size(); ++i) {
            const JsonValue &w = arr.at(i);
            if (!w.has("name") || !w.has("fastTicksPerSec"))
                continue;
            JsonValue row = JsonValue::object();
            row.set("name", JsonValue::string(
                w.at("name").asString()));
            row.set("fastTicksPerSec", JsonValue::number(
                w.at("fastTicksPerSec").asDouble()));
            if (w.has("speedup"))
                row.set("speedup", JsonValue::number(
                    w.at("speedup").asDouble()));
            workloads.append(std::move(row));
        }
    }
    entry.set("workloads", std::move(workloads));
    entries.append(std::move(entry));
    JsonValue doc = JsonValue::object();
    doc.set("entries", std::move(entries));

    if (!writeFile(path, doc.dump(2))) {
        std::cerr << "warning: cannot write series '" << path
                  << "'\n";
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3) {
        std::cerr << "usage: nscs_bench_diff BASELINE.json CURRENT.json"
                     " [--tolerance F]\n"
                     "                       [--series FILE] "
                     "[--commit ID]\n";
        return 2;
    }
    double tolerance = 0.30;
    const char *series_path = nullptr;
    std::string commit = "unknown";
    for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
            const char *arg = argv[++i];
            char *end = nullptr;
            tolerance = std::strtod(arg, &end);
            if (end == arg || *end != '\0' || tolerance < 0.0 ||
                tolerance >= 1.0) {
                std::cerr << "bad --tolerance '" << arg
                          << "' (want a fraction in [0, 1))\n";
                return 2;
            }
        } else if (std::strcmp(argv[i], "--series") == 0 &&
                   i + 1 < argc) {
            series_path = argv[++i];
        } else if (std::strcmp(argv[i], "--commit") == 0 &&
                   i + 1 < argc) {
            commit = argv[++i];
        } else {
            std::cerr << "unknown option '" << argv[i] << "'\n";
            return 2;
        }
    }

    JsonValue base = loadDoc(argv[1]);
    JsonValue cur = loadDoc(argv[2]);

    if (series_path != nullptr)
        appendSeries(series_path, commit, cur);

    std::vector<Row> rows;
    for (const char *key :
         {"workloads", "updateWorkloads", "classifierWorkloads",
          "boardWorkloads"}) {
        collect(base, key, false, rows);
        collect(cur, key, true, rows);
    }
    if (rows.empty()) {
        std::cerr << "no comparable workloads found\n";
        return 2;
    }

    TextTable t({"workload", "base ticks/s", "cur ticks/s", "ratio",
                 "base x", "cur x", "verdict"});
    int regressions = 0;
    int added = 0, removed = 0;
    for (const Row &r : rows) {
        if (r.curTps == 0.0) {
            // Workload removed from the current run: lost coverage
            // counts as a regression.
            t.addRow({r.name, fmtF(r.baseTps, 0), "-", "-",
                      fmtF(r.baseSpeedup, 2), "-", "REMOVED"});
            ++regressions;
            ++removed;
            continue;
        }
        if (r.baseTps == 0.0 && r.baseSpeedup == 0.0) {
            // Workload added since the baseline: nothing to regress
            // against, report it so the set change is visible.
            t.addRow({r.name, "-", fmtF(r.curTps, 0), "-", "-",
                      fmtF(r.curSpeedup, 2), "ADDED"});
            ++added;
            continue;
        }
        // Speedup (fast path over scalar, same host and process) is
        // the machine-independent signal; ticks/s only when absent.
        double ratio;
        if (r.baseSpeedup > 0 && r.curSpeedup > 0)
            ratio = r.curSpeedup / r.baseSpeedup;
        else
            ratio = r.baseTps > 0 ? r.curTps / r.baseTps : 1.0;
        bool bad = ratio < 1.0 - tolerance;
        if (bad)
            ++regressions;
        t.addRow({r.name, fmtF(r.baseTps, 0), fmtF(r.curTps, 0),
                  fmtF(ratio, 2), fmtF(r.baseSpeedup, 2),
                  fmtF(r.curSpeedup, 2),
                  bad ? "REGRESSION" : "ok"});
    }
    std::cout << t.str();
    if (added || removed)
        std::cout << "workload set changed: " << added
                  << " added, " << removed
                  << " removed vs baseline\n";
    if (regressions) {
        std::cout << regressions << " workload(s) regressed beyond "
                  << fmtF(tolerance * 100, 0) << "% tolerance\n";
        return 1;
    }
    std::cout << "no regressions beyond "
              << fmtF(tolerance * 100, 0) << "% tolerance\n";
    return 0;
}
