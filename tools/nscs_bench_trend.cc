/**
 * @file
 * nscs_bench_trend — render the BENCH_series.json per-commit history
 * (written by `nscs_bench_diff --series`) as a per-metric trend:
 * first/last/delta per workload metric, an ASCII sparkline over the
 * commit axis, and optionally the full matrix as CSV.
 *
 * Usage:
 *   nscs_bench_trend SERIES.json [--metric speedup|ticks]
 *                    [--last N] [--csv FILE]
 *
 * The series file holds {"entries": [{"commit": ID, "workloads":
 * [{name, fastTicksPerSec, speedup}, ...]}, ...]} with one entry per
 * recorded commit, oldest first.  For every workload name seen
 * anywhere in the selected window the tool prints one row:
 *
 *   workload  metric  first  last  delta%  trend
 *
 * where trend is a sparkline (▁▂▃▄▅▆▇█) of the metric across the
 * window, scaled per-row between its min and max; commits where the
 * workload is missing render as a gap ('.').  `--metric speedup`
 * (default) trends the machine-independent fast-over-scalar speedup,
 * `--metric ticks` the absolute fastTicksPerSec.  `--last N` limits
 * the window to the most recent N entries.  `--csv FILE` writes the
 * full long-form matrix (commit, workload, fastTicksPerSec, speedup)
 * for external plotting.
 *
 * Exit status: 0 on success (even for a flat or single-entry series —
 * trend is a report, not a gate; regressions gate via
 * nscs_bench_diff).  A missing or empty series file is also exit 0
 * with a pointer to `nscs_bench_diff --series`: fresh checkouts have
 * no history yet, and a reporting step must not fail CI over that.
 * Exit 2 on usage errors and malformed JSON.
 */

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "util/csv.hh"
#include "util/json.hh"
#include "util/table.hh"

using namespace nscs;

namespace {

struct Sample
{
    double value = 0.0;
    bool present = false;
};

struct Series
{
    std::string name;             //!< workload name
    std::vector<Sample> samples;  //!< one per commit, window order
};

/** Eight-step unicode sparkline; missing samples render as '.'. */
std::string
sparkline(const std::vector<Sample> &samples)
{
    static const char *kLevels[8] = {"▁", "▂", "▃",
                                     "▄", "▅", "▆",
                                     "▇", "█"};
    double lo = 0.0, hi = 0.0;
    bool first = true;
    for (const Sample &s : samples) {
        if (!s.present)
            continue;
        lo = first ? s.value : std::min(lo, s.value);
        hi = first ? s.value : std::max(hi, s.value);
        first = false;
    }
    std::string out;
    for (const Sample &s : samples) {
        if (!s.present) {
            out += ".";
            continue;
        }
        int level = 0;
        if (hi > lo)
            level = static_cast<int>((s.value - lo) / (hi - lo) * 7.0 +
                                     0.5);
        level = std::clamp(level, 0, 7);
        out += kLevels[level];
    }
    return out;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::cerr << "usage: nscs_bench_trend SERIES.json "
                     "[--metric speedup|ticks] [--last N] "
                     "[--csv FILE]\n";
        return 2;
    }
    const char *series_path = argv[1];
    std::string metric = "speedup";
    const char *csv_path = nullptr;
    long last = 0;
    for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--metric") == 0 && i + 1 < argc) {
            metric = argv[++i];
            if (metric != "speedup" && metric != "ticks") {
                std::cerr << "bad --metric '" << metric
                          << "' (want speedup or ticks)\n";
                return 2;
            }
        } else if (std::strcmp(argv[i], "--last") == 0 &&
                   i + 1 < argc) {
            char *end = nullptr;
            last = std::strtol(argv[++i], &end, 10);
            if (end == argv[i] || *end != '\0' || last < 1) {
                std::cerr << "bad --last '" << argv[i]
                          << "' (want a positive count)\n";
                return 2;
            }
        } else if (std::strcmp(argv[i], "--csv") == 0 &&
                   i + 1 < argc) {
            csv_path = argv[++i];
        } else {
            std::cerr << "unknown option '" << argv[i] << "'\n";
            return 2;
        }
    }

    std::string text;
    if (!readFile(series_path, text)) {
        std::cout << series_path << ": no series recorded yet — "
                     "nothing to trend.  Record one with "
                     "`nscs_bench_diff --series " << series_path
                  << "`.\n";
        return 0;
    }
    JsonParseResult parsed = parseJson(text);
    if (!parsed.ok) {
        std::cerr << series_path << ": parse error: " << parsed.error
                  << "\n";
        return 2;
    }
    if (!parsed.value.has("entries")) {
        std::cerr << series_path << ": no 'entries' array (write one "
                     "with nscs_bench_diff --series)\n";
        return 2;
    }
    const JsonValue &entries = parsed.value.at("entries");
    size_t n = entries.size();
    if (n == 0) {
        std::cout << series_path << ": series is empty — nothing to "
                     "trend.  Record an entry with "
                     "`nscs_bench_diff --series " << series_path
                  << "`.\n";
        return 0;
    }
    size_t begin = 0;
    if (last > 0 && static_cast<size_t>(last) < n)
        begin = n - static_cast<size_t>(last);
    size_t window = n - begin;

    // Commit labels (short ids) and the per-workload sample matrix.
    std::vector<std::string> commits;
    std::vector<Series> series;
    for (size_t i = begin; i < n; ++i) {
        const JsonValue &entry = entries.at(i);
        commits.push_back(
            entry.getString("commit", "?").substr(0, 9));
        if (!entry.has("workloads"))
            continue;
        const JsonValue &ws = entry.at("workloads");
        for (size_t w = 0; w < ws.size(); ++w) {
            const JsonValue &wl = ws.at(w);
            if (!wl.has("name"))
                continue;
            std::string name = wl.at("name").asString();
            double value = metric == "speedup"
                ? wl.getDouble("speedup", 0.0)
                : wl.getDouble("fastTicksPerSec", 0.0);
            if (value <= 0.0)
                continue;
            Series *s = nullptr;
            for (Series &cand : series)
                if (cand.name == name)
                    s = &cand;
            if (!s) {
                series.push_back({name, {}});
                s = &series.back();
            }
            s->samples.resize(window);
            s->samples[i - begin] = {value, true};
        }
    }
    if (series.empty()) {
        std::cerr << series_path << ": no workload samples with a '"
                  << metric << "' metric\n";
        return 2;
    }
    for (Series &s : series)
        s.samples.resize(window);
    std::sort(series.begin(), series.end(),
              [](const Series &a, const Series &b) {
                  return a.name < b.name;
              });

    std::cout << series_path << ": " << window << " of " << n
              << " commit(s), metric " << metric << " ("
              << commits.front() << " .. " << commits.back() << ")\n";
    TextTable t({"workload", "first", "last", "delta", "trend"});
    for (const Series &s : series) {
        const Sample *first = nullptr;
        const Sample *lastp = nullptr;
        for (const Sample &smp : s.samples) {
            if (!smp.present)
                continue;
            if (!first)
                first = &smp;
            lastp = &smp;
        }
        if (!first)
            continue;
        double delta = first->value > 0.0
            ? (lastp->value / first->value - 1.0) * 100.0
            : 0.0;
        t.addRow({s.name, fmtF(first->value, 2),
                  fmtF(lastp->value, 2),
                  (delta >= 0 ? "+" : "") + fmtF(delta, 1) + "%",
                  sparkline(s.samples)});
    }
    std::cout << t.str();

    if (csv_path != nullptr) {
        std::ofstream out(csv_path);
        if (!out) {
            std::cerr << "cannot write csv '" << csv_path << "'\n";
            return 2;
        }
        CsvWriter csv(out);
        csv.row({"commit", "workload", "fastTicksPerSec", "speedup"});
        for (size_t i = begin; i < n; ++i) {
            const JsonValue &entry = entries.at(i);
            if (!entry.has("workloads"))
                continue;
            std::string commit = entry.getString("commit", "?");
            const JsonValue &ws = entry.at("workloads");
            for (size_t w = 0; w < ws.size(); ++w) {
                const JsonValue &wl = ws.at(w);
                if (!wl.has("name"))
                    continue;
                csv.row({commit, wl.at("name").asString(),
                         fmtF(wl.getDouble("fastTicksPerSec", 0.0), 3),
                         fmtF(wl.getDouble("speedup", 0.0), 4)});
            }
        }
        std::cout << "wrote " << csv_path << "\n";
    }
    return 0;
}
