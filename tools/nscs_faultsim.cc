/**
 * @file
 * nscs_faultsim — Monte-Carlo fault-injection campaign driver.
 *
 * Runs the synthetic cortical workload N times, each against a fresh
 * randomly generated fault plan (seeded, so the whole campaign is
 * reproducible), and compares every faulty spike trace with the
 * fault-free reference to quantify graceful degradation: output
 * accuracy, recovery behavior (rollbacks, replayed ticks, recovery
 * latency) and the fault bookkeeping counters.
 *
 * Usage:
 *   nscs_faultsim [options]
 *
 * Options:
 *   --grid WxH            core grid (default 4x4)
 *   --board WxH           shard onto a board of chips (default 1x1 =
 *                         one chip; must tile the core grid)
 *   --ticks N             simulated ticks per run (default 120)
 *   --runs N              campaign size (default 10)
 *   --seed S              base seed; run r uses S + r (default 1)
 *   --dead-cores N        permanent dead-core faults per run
 *   --stuck-words N       stuck-at crossbar word faults per run
 *   --seu N               transient potential bit flips per run
 *   --link-drops N        transient link drop windows per run
 *   --link-dups N         transient link duplicate windows per run
 *   --link-delays N       link delay windows per run
 *   --dead-links N        permanent dead-link faults per run
 *   --checkpoint-every N  checkpoint interval (0 = no recovery)
 *   --reliable            protocol-protected inter-chip links
 *   --out FILE            write the JSON report here (default stdout)
 *
 * Accuracy is the (tick, line) multiset overlap between the faulty
 * and fault-free traces: |intersection| / max(|ref|, |faulty|), 1.0
 * when the degraded run is bit-identical.  Exit status 0 once the
 * campaign completes; the report is data, not a gate.
 */

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/workload.hh"
#include "runtime/fault.hh"
#include "runtime/simulator.hh"
#include "util/json.hh"
#include "util/logging.hh"

using namespace nscs;

namespace {

void
usage()
{
    std::cerr <<
        "usage: nscs_faultsim [--grid WxH] [--board WxH] [--ticks N]\n"
        "                     [--runs N] [--seed S] [--dead-cores N]\n"
        "                     [--stuck-words N] [--seu N]\n"
        "                     [--link-drops N] [--link-dups N]\n"
        "                     [--link-delays N] [--dead-links N]\n"
        "                     [--checkpoint-every N] [--reliable]\n"
        "                     [--out FILE]\n";
    std::exit(2);
}

uint64_t
parseCount(const std::string &v)
{
    char *end = nullptr;
    unsigned long long n = std::strtoull(v.c_str(), &end, 10);
    if (v.empty() || end != v.c_str() + v.size())
        usage();
    return n;
}

/** The bench cortical workload with every third neuron re-aimed at
 *  an output line, so accuracy has a spike trace to score. */
bench::CorticalWorkload
tappedWorkload(uint32_t grid_w, uint32_t grid_h, uint64_t seed)
{
    bench::CorticalParams wp;
    wp.gridW = grid_w;
    wp.gridH = grid_h;
    wp.density = 32;
    wp.ratePerTick = 0.05;
    wp.seed = seed;
    bench::CorticalWorkload w = bench::makeCortical(wp);
    const uint32_t neurons = CoreGeometry{}.numNeurons;
    for (uint32_t c = 0; c < w.cores.size(); ++c) {
        for (uint32_t n = 0; n < neurons; n += 3) {
            NeuronDest &d = w.cores[c].dests[n];
            d = NeuronDest{};
            d.kind = NeuronDest::Kind::Output;
            d.line = c * neurons + n;
        }
    }
    return w;
}

/** (tick, line) multiset overlap: |a ∩ b| / max(|a|, |b|). */
double
traceAccuracy(std::vector<OutputSpike> a, std::vector<OutputSpike> b)
{
    if (a.empty() && b.empty())
        return 1.0;
    auto lt = [](const OutputSpike &x, const OutputSpike &y) {
        return x.tick != y.tick ? x.tick < y.tick : x.line < y.line;
    };
    std::sort(a.begin(), a.end(), lt);
    std::sort(b.begin(), b.end(), lt);
    size_t i = 0, j = 0, common = 0;
    while (i < a.size() && j < b.size()) {
        if (lt(a[i], b[j]))
            ++i;
        else if (lt(b[j], a[i]))
            ++j;
        else {
            ++common;
            ++i;
            ++j;
        }
    }
    return static_cast<double>(common) /
           static_cast<double>(std::max(a.size(), b.size()));
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    uint32_t grid_w = 4, grid_h = 4;
    uint32_t board_w = 1, board_h = 1;
    uint64_t ticks = 120, runs = 10, seed = 1;
    uint64_t checkpoint_every = 0;
    bool reliable = false;
    std::string out_path;
    FaultCampaignSpec spec;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--grid") {
            if (!parseGridSpec(next(), grid_w, grid_h))
                usage();
        } else if (arg == "--board") {
            if (!parseGridSpec(next(), board_w, board_h))
                usage();
        } else if (arg == "--ticks") {
            ticks = parseCount(next());
        } else if (arg == "--runs") {
            runs = parseCount(next());
        } else if (arg == "--seed") {
            seed = parseCount(next());
        } else if (arg == "--dead-cores") {
            spec.nDeadCore = static_cast<uint32_t>(parseCount(next()));
        } else if (arg == "--stuck-words") {
            spec.nStuckWord = static_cast<uint32_t>(parseCount(next()));
        } else if (arg == "--seu") {
            spec.nSeu = static_cast<uint32_t>(parseCount(next()));
        } else if (arg == "--link-drops") {
            spec.nLinkDrop = static_cast<uint32_t>(parseCount(next()));
        } else if (arg == "--link-dups") {
            spec.nLinkDup = static_cast<uint32_t>(parseCount(next()));
        } else if (arg == "--link-delays") {
            spec.nLinkDelay = static_cast<uint32_t>(parseCount(next()));
        } else if (arg == "--dead-links") {
            spec.nDeadLink = static_cast<uint32_t>(parseCount(next()));
        } else if (arg == "--checkpoint-every") {
            checkpoint_every = parseCount(next());
        } else if (arg == "--reliable") {
            reliable = true;
        } else if (arg == "--out") {
            out_path = next();
        } else {
            usage();
        }
    }
    if (ticks == 0 || runs == 0 || grid_w == 0 || grid_h == 0)
        usage();
    bool board_mode = board_w * board_h > 1;
    if (board_mode &&
        (grid_w % board_w != 0 || grid_h % board_h != 0))
        fatal("board %ux%u does not tile the %ux%u core grid",
              board_w, board_h, grid_w, grid_h);
    if (!board_mode &&
        (spec.nLinkDrop || spec.nLinkDup || spec.nLinkDelay ||
         spec.nDeadLink))
        fatal("link faults need a board target (--board WxH)");

    spec.ticks = ticks;
    spec.numCores = grid_w * grid_h;
    spec.boardW = board_w;
    spec.boardH = board_h;
    CoreGeometry geom;
    spec.numAxons = geom.numAxons;
    spec.numNeurons = geom.numNeurons;

    LinkParams link;
    link.reliable = reliable;

    bench::CorticalWorkload w = tappedWorkload(grid_w, grid_h, seed);
    auto makeSim = [&](std::shared_ptr<const FaultPlan> plan) {
        return board_mode
            ? bench::makeCorticalBoardSim(w, EngineKind::Event,
                                          board_w, board_h, 0, link,
                                          0, std::move(plan))
            : bench::makeCorticalSim(w, EngineKind::Event,
                                     NocModel::Functional, 0,
                                     std::move(plan));
    };

    auto ref = makeSim(nullptr);
    ref->run(ticks);
    const std::vector<OutputSpike> &refSpikes =
        ref->recorder().spikes();

    JsonValue runsOut = JsonValue::array();
    double accSum = 0.0, accMin = 1.0;
    uint64_t identical = 0, rollbacks = 0, replayed = 0;
    uint64_t unrecoveredAlarms = 0, maxLatency = 0;
    for (uint64_t r = 0; r < runs; ++r) {
        auto plan = std::make_shared<const FaultPlan>(
            makeRandomFaultPlan(spec, seed + r));
        auto sim = makeSim(plan);
        sim->setCheckpointInterval(checkpoint_every);
        sim->run(ticks);

        double acc = traceAccuracy(refSpikes,
                                   sim->recorder().spikes());
        const RecoveryStats &rs = sim->recoveryStats();
        const FaultStats fs = board_mode
            ? sim->board().faultStats()
            : sim->chip().faultStats();

        accSum += acc;
        accMin = std::min(accMin, acc);
        identical += sim->recorder().spikes() == refSpikes ? 1 : 0;
        rollbacks += rs.rollbacks;
        replayed += rs.replayedTicks;
        unrecoveredAlarms += rs.unrecoveredAlarms;
        maxLatency = std::max(maxLatency, rs.maxRecoveryLatencyTicks);

        JsonValue row = JsonValue::object();
        row.set("seed", JsonValue::integer(
            static_cast<int64_t>(seed + r)));
        row.set("accuracy", JsonValue::number(acc));
        row.set("spikes", JsonValue::integer(
            static_cast<int64_t>(sim->recorder().size())));
        row.set("rollbacks", JsonValue::integer(
            static_cast<int64_t>(rs.rollbacks)));
        row.set("replayedTicks", JsonValue::integer(
            static_cast<int64_t>(rs.replayedTicks)));
        row.set("unrecoveredAlarms", JsonValue::integer(
            static_cast<int64_t>(rs.unrecoveredAlarms)));
        row.set("maxRecoveryLatencyTicks", JsonValue::integer(
            static_cast<int64_t>(rs.maxRecoveryLatencyTicks)));
        row.set("faults", faultStatsToJson(fs));
        runsOut.append(std::move(row));
    }

    JsonValue doc = JsonValue::object();
    doc.set("format", JsonValue::string("nscs-faultsim"));
    doc.set("version", JsonValue::integer(1));
    JsonValue cfg = JsonValue::object();
    cfg.set("gridW", JsonValue::integer(grid_w));
    cfg.set("gridH", JsonValue::integer(grid_h));
    cfg.set("boardW", JsonValue::integer(board_w));
    cfg.set("boardH", JsonValue::integer(board_h));
    cfg.set("ticks", JsonValue::integer(static_cast<int64_t>(ticks)));
    cfg.set("runs", JsonValue::integer(static_cast<int64_t>(runs)));
    cfg.set("seed", JsonValue::integer(static_cast<int64_t>(seed)));
    cfg.set("checkpointEvery", JsonValue::integer(
        static_cast<int64_t>(checkpoint_every)));
    cfg.set("reliable", JsonValue::boolean(reliable));
    cfg.set("deadCores", JsonValue::integer(spec.nDeadCore));
    cfg.set("stuckWords", JsonValue::integer(spec.nStuckWord));
    cfg.set("seu", JsonValue::integer(spec.nSeu));
    cfg.set("linkDrops", JsonValue::integer(spec.nLinkDrop));
    cfg.set("linkDups", JsonValue::integer(spec.nLinkDup));
    cfg.set("linkDelays", JsonValue::integer(spec.nLinkDelay));
    cfg.set("deadLinks", JsonValue::integer(spec.nDeadLink));
    doc.set("campaign", std::move(cfg));
    JsonValue summary = JsonValue::object();
    summary.set("referenceSpikes", JsonValue::integer(
        static_cast<int64_t>(refSpikes.size())));
    summary.set("meanAccuracy", JsonValue::number(
        accSum / static_cast<double>(runs)));
    summary.set("minAccuracy", JsonValue::number(accMin));
    summary.set("bitIdenticalRuns", JsonValue::integer(
        static_cast<int64_t>(identical)));
    summary.set("rollbacks", JsonValue::integer(
        static_cast<int64_t>(rollbacks)));
    summary.set("replayedTicks", JsonValue::integer(
        static_cast<int64_t>(replayed)));
    summary.set("unrecoveredAlarms", JsonValue::integer(
        static_cast<int64_t>(unrecoveredAlarms)));
    summary.set("maxRecoveryLatencyTicks", JsonValue::integer(
        static_cast<int64_t>(maxLatency)));
    doc.set("summary", std::move(summary));
    doc.set("runs", std::move(runsOut));

    std::string text = doc.dump(2) + "\n";
    if (out_path.empty()) {
        std::cout << text;
    } else {
        if (!writeFile(out_path, text))
            fatal("cannot write report '%s'", out_path.c_str());
        std::cout << "wrote " << out_path << " (mean accuracy "
                  << accSum / static_cast<double>(runs) << ", "
                  << identical << "/" << runs
                  << " bit-identical runs)\n";
    }
    return 0;
}
