/**
 * @file
 * nscs_inspect — summarise a compiled model file: grid, per-core
 * utilisation, synapse counts, destinations, inputs and outputs.
 *
 * Usage:
 *   nscs_inspect MODEL.json [--cores]
 *
 * With --cores, prints a per-core utilisation table in addition to
 * the model summary.
 */

#include <cstring>
#include <iostream>

#include "neuron/neuron.hh"
#include "prog/compiled.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace nscs;

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::cerr << "usage: nscs_inspect MODEL.json [--cores]\n";
        return 2;
    }
    bool per_core = argc > 2 && std::strcmp(argv[2], "--cores") == 0;

    CompiledModel model;
    if (!loadCompiledModel(argv[1], model))
        fatal("cannot load model file '%s'", argv[1]);

    uint64_t synapses = 0, used_cores = 0, neurons_used = 0;
    uint64_t axons_used = 0, core_dests = 0, output_dests = 0;
    // Engine-scheduling cohorts: which update path and evaluation
    // class each neuron lands in (see neuron/batch.hh and
    // neuron/neuron.hh).
    uint64_t det_update = 0, stoch_update = 0;
    uint64_t cls_count[3] = {0, 0, 0};
    for (const CoreConfig &cfg : model.cores) {
        uint64_t core_syn = 0;
        uint32_t axons = 0;
        for (const auto &row : cfg.xbarRows) {
            core_syn += row.count();
            if (row.any())
                ++axons;
        }
        uint32_t active = 0;
        for (uint32_t n = 0; n < cfg.geom.numNeurons; ++n) {
            if (cfg.dests[n].kind == NeuronDest::Kind::Core) {
                ++core_dests;
                ++active;
            } else if (cfg.dests[n].kind == NeuronDest::Kind::Output) {
                ++output_dests;
                ++active;
            }
            if (drawsPerTick(cfg.neurons[n]))
                ++stoch_update;
            else
                ++det_update;
            ++cls_count[static_cast<int>(
                classifyNeuron(cfg.neurons[n]))];
        }
        if (core_syn || active)
            ++used_cores;
        synapses += core_syn;
        axons_used += axons;
        neurons_used += active;
    }

    TextTable t({"property", "value"});
    t.addRow({"grid", std::to_string(model.gridWidth) + "x" +
              std::to_string(model.gridHeight)});
    t.addRow({"core geometry",
              std::to_string(model.geom.numAxons) + " axons x " +
              std::to_string(model.geom.numNeurons) + " neurons x " +
              std::to_string(model.geom.delaySlots) + " slots"});
    t.addRow({"cores in use", fmtInt(used_cores) + " / " +
              fmtInt(model.cores.size())});
    t.addRow({"synapses", fmtInt(synapses)});
    t.addRow({"axons in use", fmtInt(axons_used)});
    t.addRow({"routed neurons", fmtInt(neurons_used)});
    t.addRow({"core->core dests", fmtInt(core_dests)});
    t.addRow({"output dests", fmtInt(output_dests)});
    t.addRow({"input lines", fmtInt(model.inputs.size())});
    t.addRow({"output lines", fmtInt(model.numOutputs)});
    t.addRow({"det-update neurons", fmtInt(det_update)});
    t.addRow({"stoch-update neurons", fmtInt(stoch_update)});
    t.addRow({"class Pure/Lazy/Dense",
              fmtInt(cls_count[0]) + " / " + fmtInt(cls_count[1]) +
                  " / " + fmtInt(cls_count[2])});
    std::cout << t.str();

    if (per_core) {
        std::cout << "\n";
        TextTable ct({"core", "x,y", "neurons", "axons", "synapses"});
        for (uint32_t c = 0; c < model.cores.size(); ++c) {
            const CoreConfig &cfg = model.cores[c];
            uint64_t syn = 0;
            uint32_t axons = 0, used = 0;
            for (const auto &row : cfg.xbarRows) {
                syn += row.count();
                if (row.any())
                    ++axons;
            }
            for (const auto &d : cfg.dests)
                if (d.kind != NeuronDest::Kind::None)
                    ++used;
            if (!syn && !used)
                continue;
            ct.addRow({std::to_string(c),
                       std::to_string(c % model.gridWidth) + "," +
                       std::to_string(c / model.gridWidth),
                       fmtInt(used), fmtInt(axons), fmtInt(syn)});
        }
        std::cout << ct.str();
    }
    return 0;
}
