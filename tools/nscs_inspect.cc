/**
 * @file
 * nscs_inspect — summarise a compiled model file: grid, per-core
 * utilisation, synapse counts, destinations, inputs and outputs,
 * and — for board targets — per-chip utilisation and the static
 * inter-chip link traffic implied by the neuron destinations.
 *
 * Usage:
 *   nscs_inspect MODEL.json [--cores] [--chips] [--board WxH]
 *                [--instances B] [--drive T] [--traffic FILE]
 *
 * With --traffic, loads a measured traffic profile (nscs_run
 * --trace-traffic) for the same board shape and joins it onto the
 * --chips link table: measured packets, stalls and drops per link
 * next to the static all-fire estimate, plus the congestion weight
 * the profile-guided route table would assign each link.
 *
 * With --cores, prints a per-core utilisation table.  With --chips,
 * prints per-chip and per-link tables for the model's board target
 * (or the shape given by --board, which overrides the model's).
 * With --instances, deploys the model as a B-instance batched chip
 * and reports the lane count and how the memory footprint splits
 * into shared (crossbars, weights, config) and per-instance lane
 * state — the marginal cost of one more replica.
 * With --drive, additionally runs the deployed chip for T ticks with
 * the model's input lines pulsed at a fixed rate from a fixed-seed
 * generator, then reports the dynamic occupancy counters: how full
 * the scheduler slots actually were and which integrate path served
 * the synaptic events.  The drive is deterministic — same model,
 * same T, same report.
 * Link traffic is computed statically by walking every inter-chip
 * destination's X-then-Y route, the same route the runtime takes —
 * the per-spike load each link carries if every neuron fired once.
 */

#include <cstring>
#include <iostream>
#include <vector>

#include <cstdlib>

#include "board/board.hh"
#include "board/traffic.hh"
#include "chip/chip.hh"
#include "core/core.hh"
#include "neuron/neuron.hh"
#include "prog/compiled.hh"
#include "runtime/source.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/table.hh"

using namespace nscs;

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::cerr << "usage: nscs_inspect MODEL.json [--cores] "
                     "[--chips] [--board WxH] [--instances B] "
                     "[--drive T] [--traffic FILE]\n";
        return 2;
    }
    bool per_core = false, per_chip = false;
    std::string traffic_path;
    uint32_t board_w = 0, board_h = 0;
    uint32_t instances = 0;  // 0 = no instance report
    uint64_t drive_ticks = 0;  // 0 = no driven occupancy report
    for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--cores") == 0) {
            per_core = true;
        } else if (std::strcmp(argv[i], "--chips") == 0) {
            per_chip = true;
        } else if (std::strcmp(argv[i], "--board") == 0 &&
                   i + 1 < argc) {
            if (!parseGridSpec(argv[++i], board_w, board_h)) {
                std::cerr << "bad --board '" << argv[i] << "'\n";
                return 2;
            }
            per_chip = true;
        } else if (std::strcmp(argv[i], "--instances") == 0 &&
                   i + 1 < argc) {
            unsigned long v = std::strtoul(argv[++i], nullptr, 10);
            if (v == 0 || v > 65536) {
                std::cerr << "bad --instances '" << argv[i] << "'\n";
                return 2;
            }
            instances = static_cast<uint32_t>(v);
        } else if (std::strcmp(argv[i], "--traffic") == 0 &&
                   i + 1 < argc) {
            traffic_path = argv[++i];
            per_chip = true;
        } else if (std::strcmp(argv[i], "--drive") == 0 &&
                   i + 1 < argc) {
            unsigned long v = std::strtoul(argv[++i], nullptr, 10);
            if (v == 0 || v > 100000000) {
                std::cerr << "bad --drive '" << argv[i] << "'\n";
                return 2;
            }
            drive_ticks = v;
        } else {
            std::cerr << "unknown option '" << argv[i] << "'\n";
            return 2;
        }
    }

    CompiledModel model;
    if (!loadCompiledModel(argv[1], model))
        fatal("cannot load model file '%s'", argv[1]);
    if (board_w == 0) {
        board_w = model.boardWidth;
        board_h = model.boardHeight;
    }
    // Grids that do not tile evenly are padded with empty cores at
    // deploy time (see nscs_run); mirror that shape here.
    const uint32_t pad_w = (model.gridWidth + board_w - 1) /
        board_w * board_w;
    const uint32_t pad_h = (model.gridHeight + board_h - 1) /
        board_h * board_h;
    const uint32_t chip_w = pad_w / board_w;
    const uint32_t chip_h = pad_h / board_h;

    TrafficProfile traffic;
    bool have_traffic = false;
    if (!traffic_path.empty()) {
        std::string err;
        if (!loadTrafficProfile(traffic_path, traffic, &err))
            fatal("cannot load traffic profile '%s': %s",
                  traffic_path.c_str(), err.c_str());
        if (traffic.boardW != board_w || traffic.boardH != board_h ||
            traffic.chipW != chip_w || traffic.chipH != chip_h)
            fatal("traffic profile '%s' covers a %ux%u board of "
                  "%ux%u-core chips; this model deploys as %ux%u "
                  "chips of %ux%u cores",
                  traffic_path.c_str(), traffic.boardW,
                  traffic.boardH, traffic.chipW, traffic.chipH,
                  board_w, board_h, chip_w, chip_h);
        have_traffic = true;
    }

    uint64_t synapses = 0, used_cores = 0, neurons_used = 0;
    uint64_t axons_used = 0, core_dests = 0, output_dests = 0;
    uint64_t inter_chip = 0;
    // Engine-scheduling cohorts: which update path and evaluation
    // class each neuron lands in (see neuron/batch.hh and
    // neuron/neuron.hh).
    uint64_t det_update = 0, stoch_update = 0;
    uint64_t cls_count[3] = {0, 0, 0};

    // Per-chip utilisation and static per-link traffic.
    const uint32_t chips = board_w * board_h;
    struct ChipUse
    {
        uint64_t synapses = 0, neurons = 0, axons = 0, egress = 0;
    };
    std::vector<ChipUse> chip_use(chips);
    std::vector<uint64_t> link_load(static_cast<size_t>(chips) * 4);

    for (uint32_t c = 0; c < model.cores.size(); ++c) {
        const CoreConfig &cfg = model.cores[c];
        uint32_t x = c % model.gridWidth, y = c / model.gridWidth;
        uint32_t cx = x / chip_w, cy = y / chip_h;
        ChipUse &cu = chip_use[cy * board_w + cx];
        uint64_t core_syn = 0;
        uint32_t axons = 0;
        for (const auto &row : cfg.xbarRows) {
            core_syn += row.count();
            if (row.any())
                ++axons;
        }
        uint32_t active = 0;
        for (uint32_t n = 0; n < cfg.geom.numNeurons; ++n) {
            const NeuronDest &d = cfg.dests[n];
            if (d.kind == NeuronDest::Kind::Core) {
                ++core_dests;
                ++active;
                // Inspect never builds a Chip/Board, so the grid
                // bounds check their constructors perform must
                // happen here before the link walk indexes by chip.
                int64_t tx = static_cast<int64_t>(x) + d.dx;
                int64_t ty = static_cast<int64_t>(y) + d.dy;
                if (tx < 0 ||
                    tx >= static_cast<int64_t>(model.gridWidth) ||
                    ty < 0 ||
                    ty >= static_cast<int64_t>(model.gridHeight))
                    fatal("core (%u, %u) neuron %u targets "
                          "(%lld, %lld) outside the %ux%u grid",
                          x, y, n, static_cast<long long>(tx),
                          static_cast<long long>(ty),
                          model.gridWidth, model.gridHeight);
                uint32_t tcx = static_cast<uint32_t>(tx) / chip_w;
                uint32_t tcy = static_cast<uint32_t>(ty) / chip_h;
                if (tcx != cx || tcy != cy) {
                    ++inter_chip;
                    ++cu.egress;
                    // Walk the runtime's own routing function: one
                    // load unit per traversed link.
                    uint32_t at = cy * board_w + cx;
                    uint32_t dst = tcy * board_w + tcx;
                    while (at != dst) {
                        auto [dir, next] = xyRouteStep(at, dst,
                                                       board_w);
                        link_load[at * 4 + dir] += 1;
                        at = next;
                    }
                }
            } else if (d.kind == NeuronDest::Kind::Output) {
                ++output_dests;
                ++active;
            }
            if (drawsPerTick(cfg.neurons[n]))
                ++stoch_update;
            else
                ++det_update;
            ++cls_count[static_cast<int>(
                classifyNeuron(cfg.neurons[n]))];
        }
        if (core_syn || active)
            ++used_cores;
        synapses += core_syn;
        axons_used += axons;
        neurons_used += active;
        cu.synapses += core_syn;
        cu.neurons += active;
        cu.axons += axons;
    }

    TextTable t({"property", "value"});
    t.addRow({"grid", std::to_string(model.gridWidth) + "x" +
              std::to_string(model.gridHeight)});
    if (chips > 1) {
        t.addRow({"board", std::to_string(board_w) + "x" +
                  std::to_string(board_h) + " chips of " +
                  std::to_string(chip_w) + "x" +
                  std::to_string(chip_h) + " cores"});
    }
    t.addRow({"core geometry",
              std::to_string(model.geom.numAxons) + " axons x " +
              std::to_string(model.geom.numNeurons) + " neurons x " +
              std::to_string(model.geom.delaySlots) + " slots"});
    t.addRow({"cores in use", fmtInt(used_cores) + " / " +
              fmtInt(model.cores.size())});
    t.addRow({"synapses", fmtInt(synapses)});
    t.addRow({"axons in use", fmtInt(axons_used)});
    t.addRow({"routed neurons", fmtInt(neurons_used)});
    t.addRow({"core->core dests", fmtInt(core_dests)});
    if (chips > 1)
        t.addRow({"inter-chip dests", fmtInt(inter_chip)});
    t.addRow({"output dests", fmtInt(output_dests)});
    t.addRow({"input lines", fmtInt(model.inputs.size())});
    t.addRow({"output lines", fmtInt(model.numOutputs)});
    t.addRow({"det-update neurons", fmtInt(det_update)});
    t.addRow({"stoch-update neurons", fmtInt(stoch_update)});
    t.addRow({"class Pure/Lazy/Dense",
              fmtInt(cls_count[0]) + " / " + fmtInt(cls_count[1]) +
                  " / " + fmtInt(cls_count[2])});
    std::cout << t.str();

    if (per_chip && chips > 1) {
        std::cout << "\n";
        TextTable ct({"chip", "x,y", "neurons", "axons", "synapses",
                      "egress dests"});
        for (uint32_t c = 0; c < chips; ++c) {
            const ChipUse &cu = chip_use[c];
            ct.addRow({std::to_string(c),
                       std::to_string(c % board_w) + "," +
                           std::to_string(c / board_w),
                       fmtInt(cu.neurons), fmtInt(cu.axons),
                       fmtInt(cu.synapses), fmtInt(cu.egress)});
        }
        std::cout << ct.str();

        std::cout << "\n";
        std::vector<std::string> lt_cols = {
            "link", "static load (spikes/all-fire)"};
        std::vector<uint64_t> weights;
        if (have_traffic) {
            lt_cols.insert(lt_cols.end(),
                           {"measured packets", "stalls", "drops",
                            "route weight"});
            weights = congestionLinkWeights(traffic);
        }
        TextTable lt(lt_cols);
        for (uint32_t l = 0;
             l < static_cast<uint32_t>(link_load.size()); ++l) {
            // A profile can load links the static all-fire estimate
            // never touches (profile-guided routes detour); show a
            // row when either side is non-zero.
            const bool measured = have_traffic &&
                l < traffic.links.size() &&
                (traffic.links[l].packets || traffic.links[l].stalls ||
                 traffic.links[l].drops);
            if (link_load[l] == 0 && !measured)
                continue;
            uint32_t chip = l / 4;
            std::vector<std::string> row = {
                "chip(" + std::to_string(chip % board_w) + "," +
                    std::to_string(chip / board_w) + ")." +
                    linkDirName(l % 4),
                fmtInt(link_load[l])};
            if (have_traffic) {
                const TrafficLinkLoad tl = l < traffic.links.size()
                    ? traffic.links[l]
                    : TrafficLinkLoad{};
                row.push_back(fmtInt(tl.packets));
                row.push_back(fmtInt(tl.stalls));
                row.push_back(fmtInt(tl.drops));
                row.push_back(
                    fmtInt(l < weights.size() ? weights[l] : 0));
            }
            lt.addRow(row);
        }
        std::cout << lt.str();
    } else if (per_chip) {
        std::cout << "\n(single-chip model: no chip/link tables)\n";
    }

    if (instances != 0) {
        // Deploy the model twice (B and B+1 lanes) so the marginal
        // footprint of one more replica — and with it the shared vs
        // per-lane split — is measured, not modeled.
        auto deploy = [&model](uint32_t lanes) {
            ChipParams cp;
            cp.width = model.gridWidth;
            cp.height = model.gridHeight;
            cp.coreGeom = model.geom;
            cp.instances = lanes;
            std::vector<CoreConfig> cores = model.cores;
            return Chip(cp, std::move(cores)).footprintBytes();
        };
        size_t fb = deploy(instances);
        size_t per_lane = deploy(instances + 1) - fb;
        size_t shared = fb - static_cast<size_t>(instances) * per_lane;
        double share = fb > 0
            ? 100.0 * static_cast<double>(per_lane) /
                static_cast<double>(fb)
            : 0.0;
        std::cout << "\n";
        TextTable it({"instance batching", "value"});
        it.addRow({"instance lanes", fmtInt(instances)});
        it.addRow({"device footprint", fmtInt(fb) + " bytes"});
        it.addRow({"shared (crossbar/config)",
                   fmtInt(shared) + " bytes"});
        it.addRow({"per-instance lane",
                   fmtInt(per_lane) + " bytes (" +
                       std::to_string(share).substr(0, 4) +
                       "% of total)"});
        std::cout << it.str();
    }

    if (drive_ticks != 0) {
        if (model.inputs.empty()) {
            std::cout << "\n(--drive skipped: model has no input "
                         "lines to pulse)\n";
        } else {
            // Deploy and drive the chip for real: each named input
            // line fires independently per lane per tick with
            // probability 1/4 from a fixed-seed generator, so the
            // occupancy report reflects the engine's actual
            // scheduling and integrate-path choices, not a static
            // model.  The counters it prints are simulation-effort
            // statistics (see CoreCounters); architectural results
            // never depend on them.
            const uint32_t lanes = instances ? instances : 1;
            ChipParams cp;
            cp.width = model.gridWidth;
            cp.height = model.gridHeight;
            cp.coreGeom = model.geom;
            cp.instances = lanes;
            std::vector<CoreConfig> cores = model.cores;
            Chip chip(cp, std::move(cores));
            Xoshiro256 rng(0xD21BE5EEDull);
            for (uint64_t t = 0; t < drive_ticks; ++t) {
                for (const auto &[name, spikes] : model.inputs) {
                    (void)name;
                    for (uint32_t b = 0; b < lanes; ++b) {
                        if (!rng.chance(0.25))
                            continue;
                        for (const InputSpike &s : spikes)
                            chip.injectInput(s.core, s.axon,
                                             chip.now() + 1, b);
                    }
                }
                chip.tick();
            }
            CoreCounters sum;
            uint64_t lane_ticks = 0;
            for (uint32_t c = 0; c < chip.numCores(); ++c) {
                const CoreCounters &cc = chip.core(c).counters();
                sum.sops += cc.sops;
                sum.spikes += cc.spikes;
                sum.sopsBatched += cc.sopsBatched;
                sum.sopsAxonWord += cc.sopsAxonWord;
                sum.sopsStochBatched += cc.sopsStochBatched;
                sum.laneSlotsActive += cc.laneSlotsActive;
                sum.laneActiveAxons += cc.laneActiveAxons;
                sum.planeReuses += cc.planeReuses;
                lane_ticks += cc.ticksRun * lanes;
            }
            auto pct = [](uint64_t num, uint64_t den) {
                double p = den ? 100.0 * static_cast<double>(num) /
                        static_cast<double>(den)
                               : 0.0;
                return std::to_string(p).substr(0, 4) + "%";
            };
            std::cout << "\n";
            TextTable dt({"driven occupancy", "value"});
            dt.addRow({"ticks driven", fmtInt(drive_ticks)});
            dt.addRow({"instance lanes", fmtInt(lanes)});
            dt.addRow({"input lines", fmtInt(model.inputs.size())});
            dt.addRow({"spikes fired", fmtInt(sum.spikes)});
            dt.addRow({"synaptic events", fmtInt(sum.sops)});
            dt.addRow({"active lane-slots",
                       pct(sum.laneSlotsActive, lane_ticks) +
                           " of lane-ticks"});
            dt.addRow({"mean axons/active slot",
                       sum.laneSlotsActive
                           ? std::to_string(
                                 static_cast<double>(
                                     sum.laneActiveAxons) /
                                 static_cast<double>(
                                     sum.laneSlotsActive))
                                 .substr(0, 5)
                           : "0"});
            dt.addRow({"cross-lane fold reuses",
                       fmtInt(sum.planeReuses)});
            dt.addRow({"events via batched paths",
                       pct(sum.sopsBatched, sum.sops)});
            dt.addRow({"  of which axon-word",
                       pct(sum.sopsAxonWord, sum.sops)});
            dt.addRow({"stochastic pre-drawn",
                       pct(sum.sopsStochBatched, sum.sops)});
            std::cout << dt.str();
        }
    }

    if (per_core) {
        std::cout << "\n";
        TextTable ct({"core", "x,y", "neurons", "axons", "synapses"});
        for (uint32_t c = 0; c < model.cores.size(); ++c) {
            const CoreConfig &cfg = model.cores[c];
            uint64_t syn = 0;
            uint32_t axons = 0, used = 0;
            for (const auto &row : cfg.xbarRows) {
                syn += row.count();
                if (row.any())
                    ++axons;
            }
            for (const auto &d : cfg.dests)
                if (d.kind != NeuronDest::Kind::None)
                    ++used;
            if (!syn && !used)
                continue;
            ct.addRow({std::to_string(c),
                       std::to_string(c % model.gridWidth) + "," +
                       std::to_string(c / model.gridWidth),
                       fmtInt(used), fmtInt(axons), fmtInt(syn)});
        }
        std::cout << ct.str();
    }
    return 0;
}
