/**
 * @file
 * nscs_lint CLI — walk source trees and enforce the repo-specific
 * determinism/hygiene rules (see tools/lint/lint.hh for the rule
 * catalogue and the allow-comment syntax).
 *
 * Usage:
 *   nscs_lint [--list-rules] PATH...
 *
 * Each PATH is a file or a directory (recursed; only .hh/.cc files
 * are linted).  Files are visited in sorted path order so output is
 * stable.  Exit status: 0 clean, 1 findings, 2 usage/IO errors.
 *
 * Wired as a gating CTest case (`lint.src`) over src/ and as a CI
 * step; tools/, tests/, bench/ and examples/ are host-side and not
 * linted (they may print, time, and use host randomness freely).
 */

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.hh"

namespace fs = std::filesystem;
using nscs::lint::Finding;

namespace {

bool
readWhole(const fs::path &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> roots;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--list-rules") == 0) {
            for (const std::string &id : nscs::lint::ruleIds())
                std::cout << id << "\n";
            return 0;
        }
        if (argv[i][0] == '-') {
            std::cerr << "unknown option '" << argv[i] << "'\n";
            return 2;
        }
        roots.push_back(argv[i]);
    }
    if (roots.empty()) {
        std::cerr << "usage: nscs_lint [--list-rules] PATH...\n";
        return 2;
    }

    std::vector<std::string> files;
    for (const std::string &root : roots) {
        std::error_code ec;
        if (fs::is_directory(root, ec)) {
            for (const auto &e :
                 fs::recursive_directory_iterator(root, ec)) {
                if (e.is_regular_file() &&
                    nscs::lint::lintableFile(e.path().string()))
                    files.push_back(e.path().string());
            }
            if (ec) {
                std::cerr << "cannot walk '" << root << "': "
                          << ec.message() << "\n";
                return 2;
            }
        } else if (fs::is_regular_file(root, ec)) {
            files.push_back(root);
        } else {
            std::cerr << "no such file or directory: '" << root
                      << "'\n";
            return 2;
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    size_t total = 0;
    for (const std::string &file : files) {
        std::string content;
        if (!readWhole(file, content)) {
            std::cerr << "cannot read '" << file << "'\n";
            return 2;
        }
        for (const Finding &f : nscs::lint::lintSource(file, content)) {
            std::cout << f.file << ":" << f.line << ": [" << f.rule
                      << "] " << f.message << "\n";
            ++total;
        }
    }
    if (total) {
        std::cout << total << " finding(s) across " << files.size()
                  << " file(s)\n";
        return 1;
    }
    std::cout << "nscs_lint: " << files.size() << " file(s) clean\n";
    return 0;
}
