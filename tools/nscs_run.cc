/**
 * @file
 * nscs_run — execute a compiled model file against an input spike
 * schedule and emit the output spike trace.
 *
 * Usage:
 *   nscs_run MODEL.json TICKS [options]
 *
 * Options:
 *   --engine clock|event      execution engine (default event)
 *   --noc functional|cycle    spike transport (default functional)
 *   --threads N               parallel tick engine with N worker
 *                             lanes (default 0 = serial; output is
 *                             bit-identical either way)
 *   --inputs FILE             input schedule: lines "tick inputName"
 *   --trace FILE              write the output trace here
 *   --stats                   dump chip statistics to stderr
 *
 * The input schedule fires the named input line (all its compiled
 * injection targets) at the given tick.  Exit status 0 on success.
 */

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <sstream>

#include "prog/compiled.hh"
#include "runtime/simulator.hh"
#include "runtime/trace.hh"
#include "util/logging.hh"

using namespace nscs;

namespace {

void
usage()
{
    std::cerr <<
        "usage: nscs_run MODEL.json TICKS [--engine clock|event]\n"
        "                [--noc functional|cycle] [--threads N]\n"
        "                [--inputs FILE] [--trace FILE] [--stats]\n";
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        usage();
    std::string model_path = argv[1];
    uint64_t ticks = std::strtoull(argv[2], nullptr, 10);

    EngineKind engine = EngineKind::Event;
    NocModel noc = NocModel::Functional;
    uint32_t threads = 0;
    std::string inputs_path, trace_path;
    bool stats = false;

    for (int i = 3; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--engine") {
            std::string v = next();
            if (v == "clock")
                engine = EngineKind::Clock;
            else if (v == "event")
                engine = EngineKind::Event;
            else
                usage();
        } else if (arg == "--noc") {
            std::string v = next();
            if (v == "functional")
                noc = NocModel::Functional;
            else if (v == "cycle")
                noc = NocModel::Cycle;
            else
                usage();
        } else if (arg == "--threads") {
            std::string v = next();
            char *end = nullptr;
            unsigned long n = std::strtoul(v.c_str(), &end, 10);
            if (v.empty() || end != v.c_str() + v.size() || n > 1024)
                usage();
            threads = static_cast<uint32_t>(n);
        } else if (arg == "--inputs") {
            inputs_path = next();
        } else if (arg == "--trace") {
            trace_path = next();
        } else if (arg == "--stats") {
            stats = true;
        } else {
            usage();
        }
    }

    CompiledModel model;
    if (!loadCompiledModel(model_path, model))
        fatal("cannot load model file '%s'", model_path.c_str());

    // Parse the input schedule: "tick inputName" per line.
    std::map<uint64_t, std::vector<std::string>> schedule;
    if (!inputs_path.empty()) {
        std::string text;
        if (!readFile(inputs_path, text))
            fatal("cannot read input schedule '%s'",
                  inputs_path.c_str());
        std::istringstream is(text);
        std::string line;
        size_t lineno = 0;
        while (std::getline(is, line)) {
            ++lineno;
            size_t pos = line.find_first_not_of(" \t");
            if (pos == std::string::npos || line[pos] == '#')
                continue;
            std::istringstream ls(line);
            uint64_t tick;
            std::string name;
            if (!(ls >> tick >> name))
                fatal("%s:%zu: expected 'tick inputName'",
                      inputs_path.c_str(), lineno);
            schedule[tick].push_back(name);
        }
    }

    ChipParams cp;
    cp.width = model.gridWidth;
    cp.height = model.gridHeight;
    cp.coreGeom = model.geom;
    cp.engine = engine;
    cp.noc = noc;
    cp.threads = threads;
    Simulator sim(cp, model.cores);

    auto source = std::make_unique<ScheduleSource>();
    for (const auto &kv : schedule)
        for (const std::string &name : kv.second)
            for (const InputSpike &target : model.inputTargets(name))
                source->add(kv.first, target);
    sim.addSource(std::move(source));

    RunPerf perf = sim.run(ticks);

    const auto &spikes = sim.recorder().spikes();
    if (trace_path.empty()) {
        std::cout << formatSpikeTrace(spikes);
    } else if (!writeSpikeTrace(trace_path, spikes)) {
        fatal("cannot write trace '%s'", trace_path.c_str());
    }

    if (stats) {
        StatGroup g;
        sim.chip().dumpStats("chip", g);
        g.add("run.ticksPerSecond", perf.ticksPerSecond(),
              "wall-clock simulation speed");
        std::cerr << g.format();
    }
    return 0;
}
