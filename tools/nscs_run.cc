/**
 * @file
 * nscs_run — execute a compiled model file against an input spike
 * schedule and emit the output spike trace.
 *
 * Usage:
 *   nscs_run MODEL.json TICKS [options]
 *
 * Options:
 *   --engine clock|event      execution engine (default event)
 *   --noc functional|cycle    spike transport (default functional;
 *                             board targets require functional)
 *   --threads N               worker lanes (default 0 = serial;
 *                             board targets parallelise across
 *                             chips, chip targets across cores;
 *                             output is bit-identical either way)
 *   --instances B             run B replica instances of the model
 *                             through the shared crossbars (default
 *                             1; requires the functional transport).
 *                             The input schedule drives lane 0; the
 *                             trace's third column names the lane
 *   --board WxH               deploy onto a WxH board of chips
 *                             (default: the model's compiled board
 *                             target; 1x1 = one chip).  Grids that
 *                             do not tile evenly are padded with
 *                             empty cores.
 *   --link-budget N           link packets per tick (0 = unlimited)
 *   --link-delay N            extra transit ticks per link hop
 *   --link-queue N            stalled packets per link (0 = unlim.)
 *   --link-coalesce N         batch up to N same-destination spikes
 *                             into one fabric packet (0/1 = off)
 *   --trace-traffic FILE      write the measured traffic profile
 *                             (per-chip-pair and per-link loads)
 *                             after a board run
 *   --traffic-profile FILE    route packets with a congestion-aware
 *                             table built from a measured profile
 *                             instead of deterministic XY
 *   --inputs FILE             input schedule: lines "tick inputName"
 *   --trace FILE              write the output trace here
 *   --stats                   dump device statistics to stderr
 *   --fault-plan FILE         inject the nscs-fault-plan document
 *   --checkpoint-every N      checkpoint every N ticks; detected
 *                             transient faults roll back and replay
 *   --save-state FILE         write a snapshot after the run
 *   --restore FILE            restore a snapshot before the run
 *                             (model/engine/board must match it)
 *
 * The input schedule fires the named input line (all its compiled
 * injection targets) at the given tick.  Exit status 0 on success.
 */

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <sstream>

#include "board/traffic.hh"
#include "prog/compiled.hh"
#include "runtime/fault.hh"
#include "runtime/simulator.hh"
#include "runtime/trace.hh"
#include "util/logging.hh"

using namespace nscs;

namespace {

void
usage()
{
    std::cerr <<
        "usage: nscs_run MODEL.json TICKS [--engine clock|event]\n"
        "                [--noc functional|cycle] [--threads N]\n"
        "                [--instances B]\n"
        "                [--board WxH] [--link-budget N]\n"
        "                [--link-delay N] [--link-queue N]\n"
        "                [--link-coalesce N] [--trace-traffic FILE]\n"
        "                [--traffic-profile FILE]\n"
        "                [--inputs FILE] [--trace FILE] [--stats]\n"
        "                [--fault-plan FILE] [--checkpoint-every N]\n"
        "                [--save-state FILE] [--restore FILE]\n";
    std::exit(2);
}

uint32_t
parseCount(const std::string &v, uint32_t limit)
{
    char *end = nullptr;
    unsigned long n = std::strtoul(v.c_str(), &end, 10);
    if (v.empty() || end != v.c_str() + v.size() || n > limit)
        usage();
    return static_cast<uint32_t>(n);
}

/**
 * Grow the model's grid to multiples of the board dimensions with
 * empty cores, remapping the row-major input targets.  Relative
 * destinations survive: every populated core keeps its (x, y).
 */
void
padModelToBoard(CompiledModel &model, uint32_t bw, uint32_t bh)
{
    uint32_t nw = (model.gridWidth + bw - 1) / bw * bw;
    uint32_t nh = (model.gridHeight + bh - 1) / bh * bh;
    if (nw == model.gridWidth && nh == model.gridHeight)
        return;
    std::vector<CoreConfig> cells;
    cells.reserve(static_cast<size_t>(nw) * nh);
    for (uint32_t y = 0; y < nh; ++y) {
        for (uint32_t x = 0; x < nw; ++x) {
            if (x < model.gridWidth && y < model.gridHeight)
                cells.push_back(std::move(
                    model.cores[y * model.gridWidth + x]));
            else
                cells.push_back(CoreConfig::make(model.geom));
        }
    }
    for (auto &kv : model.inputs) {
        for (InputSpike &t : kv.second) {
            uint32_t x = t.core % model.gridWidth;
            uint32_t y = t.core / model.gridWidth;
            t.core = y * nw + x;
        }
    }
    model.cores = std::move(cells);
    model.gridWidth = nw;
    model.gridHeight = nh;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        usage();
    std::string model_path = argv[1];
    uint64_t ticks = std::strtoull(argv[2], nullptr, 10);

    EngineKind engine = EngineKind::Event;
    NocModel noc = NocModel::Functional;
    uint32_t threads = 0;
    uint32_t instances = 1;
    uint32_t board_w = 0, board_h = 0;  // 0 = model default
    LinkParams link;
    std::string inputs_path, trace_path;
    std::string trace_traffic_path, profile_path;
    std::string plan_path, save_path, restore_path;
    uint64_t checkpoint_every = 0;
    bool stats = false;

    for (int i = 3; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--engine") {
            std::string v = next();
            if (v == "clock")
                engine = EngineKind::Clock;
            else if (v == "event")
                engine = EngineKind::Event;
            else
                usage();
        } else if (arg == "--noc") {
            std::string v = next();
            if (v == "functional")
                noc = NocModel::Functional;
            else if (v == "cycle")
                noc = NocModel::Cycle;
            else
                usage();
        } else if (arg == "--threads") {
            threads = parseCount(next(), 1024);
        } else if (arg == "--instances") {
            instances = parseCount(next(), 1u << 16);
            if (instances == 0)
                usage();
        } else if (arg == "--board") {
            if (!parseGridSpec(next(), board_w, board_h))
                usage();
        } else if (arg == "--link-budget") {
            link.packetsPerTick = parseCount(next(), 1u << 30);
        } else if (arg == "--link-delay") {
            link.extraDelay = parseCount(next(), 1u << 20);
        } else if (arg == "--link-queue") {
            link.queueCapacity = parseCount(next(), 1u << 30);
        } else if (arg == "--link-coalesce") {
            link.coalesce = parseCount(next(), 1u << 16);
        } else if (arg == "--trace-traffic") {
            trace_traffic_path = next();
        } else if (arg == "--traffic-profile") {
            profile_path = next();
        } else if (arg == "--inputs") {
            inputs_path = next();
        } else if (arg == "--trace") {
            trace_path = next();
        } else if (arg == "--stats") {
            stats = true;
        } else if (arg == "--fault-plan") {
            plan_path = next();
        } else if (arg == "--checkpoint-every") {
            checkpoint_every = parseCount(next(), 1u << 30);
        } else if (arg == "--save-state") {
            save_path = next();
        } else if (arg == "--restore") {
            restore_path = next();
        } else {
            usage();
        }
    }

    CompiledModel model;
    if (!loadCompiledModel(model_path, model))
        fatal("cannot load model file '%s'", model_path.c_str());
    if (board_w == 0) {
        board_w = model.boardWidth;
        board_h = model.boardHeight;
    }
    bool board_mode = board_w * board_h > 1;
    if (board_mode) {
        if (noc == NocModel::Cycle)
            fatal("board targets require the functional transport");
        padModelToBoard(model, board_w, board_h);
    } else if (!trace_traffic_path.empty() || !profile_path.empty()) {
        fatal("--trace-traffic/--traffic-profile need a board target "
              "(use --board WxH or a board-compiled model)");
    }

    std::shared_ptr<const TrafficProfile> profile;
    if (!profile_path.empty()) {
        TrafficProfile tp;
        std::string err;
        if (!loadTrafficProfile(profile_path, tp, &err))
            fatal("cannot load traffic profile '%s': %s",
                  profile_path.c_str(), err.c_str());
        profile = std::make_shared<const TrafficProfile>(std::move(tp));
    }

    // Parse the input schedule: "tick inputName" per line.
    std::map<uint64_t, std::vector<std::string>> schedule;
    if (!inputs_path.empty()) {
        std::string text;
        if (!readFile(inputs_path, text))
            fatal("cannot read input schedule '%s'",
                  inputs_path.c_str());
        std::istringstream is(text);
        std::string line;
        size_t lineno = 0;
        while (std::getline(is, line)) {
            ++lineno;
            size_t pos = line.find_first_not_of(" \t");
            if (pos == std::string::npos || line[pos] == '#')
                continue;
            std::istringstream ls(line);
            uint64_t tick;
            std::string name;
            if (!(ls >> tick >> name))
                fatal("%s:%zu: expected 'tick inputName'",
                      inputs_path.c_str(), lineno);
            schedule[tick].push_back(name);
        }
    }

    std::shared_ptr<const FaultPlan> plan;
    if (!plan_path.empty()) {
        FaultPlan loaded;
        std::string err;
        if (!loadFaultPlan(plan_path, loaded, err))
            fatal("%s", err.c_str());
        plan = std::make_shared<const FaultPlan>(std::move(loaded));
    }

    std::unique_ptr<Simulator> sim;
    if (board_mode) {
        BoardParams bp;
        bp.width = board_w;
        bp.height = board_h;
        bp.chip.width = model.gridWidth / board_w;
        bp.chip.height = model.gridHeight / board_h;
        bp.chip.coreGeom = model.geom;
        bp.chip.engine = engine;
        bp.chip.instances = instances;
        bp.link = link;
        bp.threads = threads;
        bp.faultPlan = plan;
        bp.traceTraffic = !trace_traffic_path.empty();
        bp.trafficProfile = profile;
        sim = std::make_unique<Simulator>(bp, model.cores);
    } else {
        ChipParams cp;
        cp.width = model.gridWidth;
        cp.height = model.gridHeight;
        cp.coreGeom = model.geom;
        cp.engine = engine;
        cp.noc = noc;
        cp.instances = instances;
        cp.threads = threads;
        cp.faultPlan = plan;
        sim = std::make_unique<Simulator>(cp, model.cores);
    }

    auto source = std::make_unique<ScheduleSource>();
    for (const auto &kv : schedule)
        for (const std::string &name : kv.second)
            for (const InputSpike &target : model.inputTargets(name))
                source->add(kv.first, target);
    sim->addSource(std::move(source));

    sim->setCheckpointInterval(checkpoint_every);
    if (!restore_path.empty()) {
        std::string err;
        if (!sim->restoreStateFile(restore_path, &err))
            fatal("cannot restore '%s': %s", restore_path.c_str(),
                  err.c_str());
    }

    RunPerf perf = sim->run(ticks);

    if (!save_path.empty()) {
        std::string err;
        if (!sim->saveStateFile(save_path, &err))
            fatal("cannot save state to '%s': %s", save_path.c_str(),
                  err.c_str());
    }

    if (!trace_traffic_path.empty() &&
        !saveTrafficProfile(trace_traffic_path,
                            sim->board().trafficProfile()))
        fatal("cannot write traffic profile '%s'",
              trace_traffic_path.c_str());

    const auto &spikes = sim->recorder().spikes();
    if (trace_path.empty()) {
        std::cout << formatSpikeTrace(spikes);
    } else if (!writeSpikeTrace(trace_path, spikes)) {
        fatal("cannot write trace '%s'", trace_path.c_str());
    }

    if (stats) {
        StatGroup g;
        if (board_mode)
            sim->board().dumpStats("board", g);
        else
            sim->chip().dumpStats("chip", g);
        g.add("run.ticksPerSecond", perf.ticksPerSecond(),
              "wall-clock simulation speed");
        if (checkpoint_every != 0) {
            const RecoveryStats &rs = sim->recoveryStats();
            g.add("recovery.checkpoints",
                  static_cast<double>(rs.checkpoints),
                  "checkpoints taken");
            g.add("recovery.rollbacks",
                  static_cast<double>(rs.rollbacks),
                  "alarm-triggered rollbacks");
            g.add("recovery.replayedTicks",
                  static_cast<double>(rs.replayedTicks),
                  "ticks re-executed after rollbacks");
            g.add("recovery.unrecoveredAlarms",
                  static_cast<double>(rs.unrecoveredAlarms),
                  "alarms with no checkpoint to roll back to");
        }
        std::cerr << g.format();
    }
    return 0;
}
